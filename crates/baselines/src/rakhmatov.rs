//! The Table 4 baseline: Rakhmatov & Vrudhula's energy-optimal
//! design-point selection plus greedy sequencing (TECS 2003).
//!
//! 1. **Design-point selection** — a dynamic program over discretised time
//!    (a multiple-choice knapsack): pick one design point per task so that
//!    the total execution time fits the deadline and the total energy is
//!    *minimal*. This is provably optimal for the energy objective — but
//!    energy-blind to *when* charge is drawn, which is exactly the weakness
//!    the DATE'05 paper exploits.
//! 2. **Sequencing** — the paper's eq. 5: list scheduling where a ready task
//!    `v` weighs `max{I_v, MeanI(G_v)}` (its own assigned current, or the
//!    mean assigned current of the subgraph rooted at it, whichever is
//!    larger) and the heaviest ready task runs first.

use crate::Scheduler;
use batsched_battery::units::Minutes;
use batsched_core::{Schedule, SchedulerError};
use batsched_taskgraph::topo::{descendants_mask, list_schedule};
use batsched_taskgraph::{EnergyMetric, PointId, TaskGraph, TaskId};

/// Energy-optimal design-point selection + greedy max-current sequencing.
#[derive(Debug, Clone)]
pub struct RakhmatovDp {
    /// Time-discretisation scale (grid steps per minute). The paper's
    /// instances quantise durations to 0.1 min, so the default `10` is
    /// exact for them; durations are rounded *up* to the grid so the
    /// produced schedule never exceeds the true deadline.
    pub time_scale: f64,
    /// Objective the knapsack minimises.
    pub metric: EnergyMetric,
}

impl Default for RakhmatovDp {
    fn default() -> Self {
        Self {
            time_scale: 10.0,
            metric: EnergyMetric::Charge,
        }
    }
}

impl RakhmatovDp {
    /// The energy-optimal assignment alone (before sequencing), as a
    /// task-indexed design-point vector.
    ///
    /// # Errors
    ///
    /// [`SchedulerError::DeadlineInfeasible`] when no selection fits, and
    /// [`SchedulerError::InvalidDeadline`] for non-positive deadlines.
    pub fn select_points(
        &self,
        g: &TaskGraph,
        deadline: Minutes,
    ) -> Result<Vec<PointId>, SchedulerError> {
        if !(deadline.is_finite() && deadline.value() > 0.0) {
            return Err(SchedulerError::InvalidDeadline { deadline });
        }
        let n = g.task_count();
        let m = g.point_count();
        // Grid durations, rounded up so grid feasibility implies real
        // feasibility.
        let grid = |t: TaskId, j: usize| -> usize {
            let d = g.duration(t, PointId(j)).value();
            (d * self.time_scale).ceil() as usize
        };
        let budget = (deadline.value() * self.time_scale).floor() as usize;

        // dp[time] = min energy over processed tasks with total grid time
        // exactly <= time (we keep the running minimum); choice[t][time]
        // records the column achieving it.
        const INF: f64 = f64::INFINITY;
        let mut dp = vec![INF; budget + 1];
        dp[0] = 0.0;
        // Prefix of tasks processed so far must fit: classic forward DP.
        let mut choice: Vec<Vec<u8>> = Vec::with_capacity(n);
        for t in g.task_ids() {
            let mut next = vec![INF; budget + 1];
            let mut pick = vec![u8::MAX; budget + 1];
            for j in 0..m {
                let w = grid(t, j);
                let e = g.point(t, PointId(j)).energy(self.metric).value();
                if w > budget {
                    continue;
                }
                for time in w..=budget {
                    let base = dp[time - w];
                    if base.is_finite() && base + e < next[time] {
                        next[time] = base + e;
                        pick[time] = j as u8;
                    }
                }
            }
            dp = next;
            choice.push(pick);
        }

        // Find the cheapest reachable total time.
        let mut best_time = None;
        let mut best_energy = INF;
        for (time, &e) in dp.iter().enumerate() {
            if e < best_energy {
                best_energy = e;
                best_time = Some(time);
            }
        }
        let Some(mut time) = best_time else {
            return Err(SchedulerError::DeadlineInfeasible {
                fastest: batsched_taskgraph::analysis::min_makespan(g),
                deadline,
            });
        };

        // Reconstruct column choices backwards.
        let mut assignment = vec![PointId(0); n];
        for idx in (0..n).rev() {
            let t = TaskId(idx);
            let j = choice[idx][time] as usize;
            debug_assert!(j < m, "reconstruction follows reachable states");
            assignment[idx] = PointId(j);
            time -= grid(t, j);
        }
        debug_assert_eq!(time, 0);
        Ok(assignment)
    }

    /// Eq. 5 sequencing: `w(v) = max{I_v, MeanI(G_v)}` under `assignment`.
    pub fn sequence(&self, g: &TaskGraph, assignment: &[PointId]) -> Vec<TaskId> {
        let currents: Vec<f64> = g
            .task_ids()
            .map(|t| g.current(t, assignment[t.index()]).value())
            .collect();
        let weights: Vec<f64> = g
            .task_ids()
            .map(|t| {
                let mask = descendants_mask(g, t);
                let members: Vec<usize> = mask
                    .iter()
                    .enumerate()
                    .filter(|&(_, &inside)| inside)
                    .map(|(u, _)| u)
                    .collect();
                let mean = members.iter().map(|&u| currents[u]).sum::<f64>() / members.len() as f64;
                currents[t.index()].max(mean)
            })
            .collect();
        list_schedule(g, |_, t| weights[t.index()])
    }
}

impl Scheduler for RakhmatovDp {
    fn name(&self) -> &'static str {
        "rakhmatov-dp"
    }

    fn schedule(&self, g: &TaskGraph, deadline: Minutes) -> Result<Schedule, SchedulerError> {
        let assignment = self.select_points(g, deadline)?;
        let order = self.sequence(g, &assignment);
        Ok(Schedule::new(order, assignment))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batsched_battery::units::MilliAmps;
    use batsched_taskgraph::paper::{g2, g3};
    use batsched_taskgraph::DesignPoint;

    #[test]
    fn selection_is_energy_optimal_on_a_tiny_instance() {
        // Two tasks, two points each; enumerate all four selections by hand.
        let mut b = TaskGraph::builder();
        let dp = |i: f64, d: f64| DesignPoint::new(MilliAmps::new(i), Minutes::new(d));
        let a = b.task("A", vec![dp(100.0, 1.0), dp(30.0, 3.0)]);
        let c = b.task("B", vec![dp(80.0, 2.0), dp(20.0, 5.0)]);
        b.edge(a, c);
        let g = b.build().unwrap();
        // Energies: A: 100/90, B: 160/100. Deadline 6 admits (A1,B2): 100+100
        // = wait A@DP2=90 + B@DP2=100 needs 8 min. Feasible pairs at d=6:
        // (A1,B1)=260 @3min, (A1,B2)=200 @6min, (A2,B1)=250 @5min.
        // Optimum: (A1,B2) with energy 200.
        let sel = RakhmatovDp::default()
            .select_points(&g, Minutes::new(6.0))
            .unwrap();
        assert_eq!(sel, vec![PointId(0), PointId(1)]);
        // Deadline 8 admits (A2,B2) = 190.
        let sel = RakhmatovDp::default()
            .select_points(&g, Minutes::new(8.0))
            .unwrap();
        assert_eq!(sel, vec![PointId(1), PointId(1)]);
        // Deadline 2.9 is infeasible (fastest is 3).
        assert!(matches!(
            RakhmatovDp::default().select_points(&g, Minutes::new(2.9)),
            Err(SchedulerError::DeadlineInfeasible { .. })
        ));
    }

    #[test]
    fn schedules_meet_deadlines_on_paper_graphs() {
        let algo = RakhmatovDp::default();
        let g2 = g2();
        for d in batsched_taskgraph::paper::G2_TABLE4_DEADLINES {
            let s = algo.schedule(&g2, Minutes::new(d)).unwrap();
            s.validate(&g2, Some(Minutes::new(d))).unwrap();
        }
        let g3 = g3();
        for d in batsched_taskgraph::paper::G3_TABLE4_DEADLINES {
            let s = algo.schedule(&g3, Minutes::new(d)).unwrap();
            s.validate(&g3, Some(Minutes::new(d))).unwrap();
        }
    }

    #[test]
    fn looser_deadline_never_costs_more_energy() {
        let algo = RakhmatovDp::default();
        let g = g3();
        let mut prev = f64::INFINITY;
        for d in [100.0, 150.0, 230.0, 258.0] {
            let sel = algo.select_points(&g, Minutes::new(d)).unwrap();
            let e: f64 = g
                .task_ids()
                .map(|t| g.point(t, sel[t.index()]).charge().value())
                .sum();
            assert!(e <= prev + 1e-9, "energy rose from {prev} to {e} at d={d}");
            prev = e;
        }
    }

    #[test]
    fn unconstrained_deadline_selects_all_lowest_power() {
        let g = g3();
        let sel = RakhmatovDp::default()
            .select_points(&g, Minutes::new(1e4))
            .unwrap();
        assert!(sel.iter().all(|p| p.index() == g.point_count() - 1));
    }

    #[test]
    fn eq5_sequencing_prefers_heavy_subtrees_and_heavy_tasks() {
        let mut b = TaskGraph::builder();
        let dp1 = |i: f64| vec![DesignPoint::new(MilliAmps::new(i), Minutes::new(1.0))];
        let a = b.task("A", dp1(10.0));
        let light = b.task("L", dp1(20.0));
        let heavy = b.task("H", dp1(90.0));
        b.edge(a, light).edge(a, heavy);
        let g = b.build().unwrap();
        let algo = RakhmatovDp::default();
        let order = algo.sequence(&g, &[PointId(0), PointId(0), PointId(0)]);
        assert_eq!(order, vec![a, heavy, light]);
    }

    #[test]
    fn invalid_deadline_rejected() {
        let g = g2();
        assert!(matches!(
            RakhmatovDp::default().select_points(&g, Minutes::new(0.0)),
            Err(SchedulerError::InvalidDeadline { .. })
        ));
    }
}
