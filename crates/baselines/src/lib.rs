//! # batsched-baselines
//!
//! Reference schedulers the DATE'05 paper compares against or mentions:
//!
//! * [`rakhmatov::RakhmatovDp`] — the Table 4 baseline: dynamic-programming
//!   design-point selection minimising total energy subject to the deadline
//!   (a multiple-choice knapsack), followed by the greedy
//!   `max{I_v, MeanI(G_v)}` sequencing of its eq. 5;
//! * [`chowdhury::ChowdhuryScaling`] — the heuristic of Chowdhury &
//!   Chakrabarti: scale voltages down starting from the last task;
//! * [`exhaustive::Exhaustive`] — exact optimum by enumeration (small
//!   graphs; ground truth for tests);
//! * [`annealing::SimulatedAnnealing`] — the "too heavy for an embedded
//!   platform" alternative the paper's related-work section mentions;
//! * [`random_search::RandomSearch`] — sanity floor.
//!
//! All of them implement [`Scheduler`], so the comparison harness and tests
//! can treat every algorithm uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annealing;
pub mod bounds;
pub mod chowdhury;
pub mod exhaustive;
pub mod rakhmatov;
pub mod random_search;

use batsched_battery::units::Minutes;
use batsched_core::{Schedule, SchedulerError};
use batsched_taskgraph::TaskGraph;

pub use annealing::SimulatedAnnealing;
pub use bounds::{ordering_bounds, OrderingBounds};
pub use chowdhury::ChowdhuryScaling;
pub use exhaustive::Exhaustive;
pub use rakhmatov::RakhmatovDp;
pub use random_search::RandomSearch;

/// A deadline-constrained battery-aware scheduler.
///
/// Object-safe so harnesses can hold heterogeneous `Box<dyn Scheduler>`
/// collections (C-OBJECT).
pub trait Scheduler {
    /// Short name for reports ("khan-vemuri", "rakhmatov-dp", …).
    fn name(&self) -> &'static str;

    /// Produces a valid schedule meeting `deadline`, or an error when the
    /// instance is infeasible for this algorithm.
    ///
    /// # Errors
    ///
    /// [`SchedulerError::DeadlineInfeasible`] when no design-point selection
    /// can meet the deadline; other variants for invalid inputs.
    fn schedule(&self, g: &TaskGraph, deadline: Minutes) -> Result<Schedule, SchedulerError>;
}

/// The paper's own algorithm behind the common [`Scheduler`] interface.
#[derive(Debug, Clone, Default)]
pub struct KhanVemuri {
    /// Configuration forwarded to [`batsched_core::schedule()`].
    pub config: batsched_core::SchedulerConfig,
}

impl KhanVemuri {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Self {
            config: batsched_core::SchedulerConfig::paper(),
        }
    }
}

impl Scheduler for KhanVemuri {
    fn name(&self) -> &'static str {
        "khan-vemuri"
    }

    fn schedule(&self, g: &TaskGraph, deadline: Minutes) -> Result<Schedule, SchedulerError> {
        batsched_core::schedule(g, deadline, &self.config).map(|s| s.schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batsched_taskgraph::paper::g2;

    #[test]
    fn schedulers_are_object_safe() {
        let algos: Vec<Box<dyn Scheduler>> = vec![
            Box::new(KhanVemuri::paper()),
            Box::new(RakhmatovDp::default()),
            Box::new(ChowdhuryScaling),
        ];
        let g = g2();
        for a in &algos {
            let s = a.schedule(&g, Minutes::new(75.0)).unwrap();
            s.validate(&g, Some(Minutes::new(75.0))).unwrap();
            assert!(!a.name().is_empty());
        }
    }
}
