//! Runtime of the baseline schedulers vs the paper's algorithm — supports
//! the paper's §2 claim that its heuristic is light enough for on-device
//! use compared to search-based alternatives.

use batsched_baselines::{
    ChowdhuryScaling, KhanVemuri, RakhmatovDp, RandomSearch, Scheduler, SimulatedAnnealing,
};
use batsched_battery::units::Minutes;
use batsched_taskgraph::paper::g3;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_algorithms(c: &mut Criterion) {
    let g = g3();
    let d = Minutes::new(230.0);
    let mut group = c.benchmark_group("algorithms_on_g3_d230");
    group.sample_size(20);

    let kv = KhanVemuri::paper();
    group.bench_function("khan_vemuri", |b| {
        b.iter(|| black_box(kv.schedule(&g, d).unwrap()))
    });

    let dp = RakhmatovDp::default();
    group.bench_function("rakhmatov_dp", |b| {
        b.iter(|| black_box(dp.schedule(&g, d).unwrap()))
    });

    let ch = ChowdhuryScaling;
    group.bench_function("chowdhury", |b| {
        b.iter(|| black_box(ch.schedule(&g, d).unwrap()))
    });

    let sa = SimulatedAnnealing {
        steps: 5_000,
        ..Default::default()
    };
    group.bench_function("annealing_5k", |b| {
        b.iter(|| black_box(sa.schedule(&g, d).unwrap()))
    });

    let rs = RandomSearch {
        samples: 100,
        ..Default::default()
    };
    group.bench_function("random_100", |b| {
        b.iter(|| black_box(rs.schedule(&g, d).unwrap()))
    });

    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
