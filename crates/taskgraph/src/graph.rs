//! The application model: a DAG of tasks, each with `m` design points.
//!
//! Matches the paper's conventions exactly:
//!
//! * design points of each task are stored with execution times **ascending**
//!   (matrix `D`) and currents **descending** (matrix `I`) — index `0` is
//!   the fastest/hungriest option ("DP1"), index `m−1` the slowest/leanest
//!   ("DPm");
//! * every task has the same number of design points `m`;
//! * edges denote data/control precedence; the graph must be acyclic.
//!
//! ```
//! use batsched_taskgraph::prelude::*;
//!
//! let mut b = TaskGraph::builder();
//! let a = b.task("A", vec![
//!     DesignPoint::new(MilliAmps::new(500.0), Minutes::new(2.0)),
//!     DesignPoint::new(MilliAmps::new(100.0), Minutes::new(5.0)),
//! ]);
//! let c = b.task("C", vec![
//!     DesignPoint::new(MilliAmps::new(400.0), Minutes::new(1.0)),
//!     DesignPoint::new(MilliAmps::new(80.0), Minutes::new(3.0)),
//! ]);
//! b.edge(a, c);
//! let g = b.build()?;
//! assert_eq!(g.task_count(), 2);
//! assert_eq!(g.point_count(), 2);
//! # Ok::<(), batsched_taskgraph::graph::TaskGraphError>(())
//! ```

use crate::design_point::DesignPoint;
use batsched_battery::units::{MilliAmps, Minutes};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a task in its [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TaskId(pub usize);

impl TaskId {
    /// The underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Index of a design point within a task (0 = fastest, `m−1` = leanest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct PointId(pub usize);

impl PointId {
    /// The underlying column index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for PointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // 1-based in displays to match the paper's "DP1..DPm".
        write!(f, "DP{}", self.0 + 1)
    }
}

/// Errors produced while building or validating a [`TaskGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskGraphError {
    /// The graph has no tasks.
    Empty,
    /// A task has no design points.
    NoDesignPoints {
        /// Name of the offending task.
        task: String,
    },
    /// Tasks disagree on the number of design points.
    NonUniformPointCount {
        /// Name of the offending task.
        task: String,
        /// Point count the graph uses.
        expected: usize,
        /// Point count this task declared.
        found: usize,
    },
    /// A design point has a non-positive duration or negative current.
    InvalidDesignPoint {
        /// Name of the offending task.
        task: String,
        /// Index of the offending point.
        index: usize,
    },
    /// After sorting by duration, currents were not non-increasing — the
    /// point set is not a Pareto frontier. Pre-process with
    /// [`crate::design_point::pareto_filter`].
    NonMonotoneCurrents {
        /// Name of the offending task.
        task: String,
    },
    /// An edge references a task id that does not exist.
    UnknownTask {
        /// The unknown id.
        id: usize,
    },
    /// A serialised graph listed the same edge twice. The [`TaskGraphBuilder`]
    /// deduplicates programmatic edges, but interchange documents must list
    /// each edge exactly once — a repeat almost always means a generator bug
    /// upstream, and untrusted service input must not mask it.
    DuplicateEdge {
        /// Source task index of the repeated edge.
        from: usize,
        /// Target task index of the repeated edge.
        to: usize,
    },
    /// A task depends on itself.
    SelfLoop {
        /// Name of the offending task.
        task: String,
    },
    /// The precedence relation contains a cycle through the named task.
    Cycle {
        /// A task on the cycle.
        task: String,
    },
}

impl fmt::Display for TaskGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "task graph has no tasks"),
            Self::NoDesignPoints { task } => write!(f, "task {task} has no design points"),
            Self::NonUniformPointCount { task, expected, found } => write!(
                f,
                "task {task} has {found} design points but the graph uses {expected}"
            ),
            Self::InvalidDesignPoint { task, index } => {
                write!(f, "design point {index} of task {task} is invalid")
            }
            Self::NonMonotoneCurrents { task } => write!(
                f,
                "design points of task {task} are not a pareto frontier (currents must fall as durations grow)"
            ),
            Self::UnknownTask { id } => write!(f, "edge references unknown task id {id}"),
            Self::DuplicateEdge { from, to } => write!(
                f,
                "edge ({from}, {to}) is listed more than once (serialised graphs must list each edge exactly once)"
            ),
            Self::SelfLoop { task } => write!(f, "task {task} depends on itself"),
            Self::Cycle { task } => write!(f, "precedence cycle detected through task {task}"),
        }
    }
}

impl std::error::Error for TaskGraphError {}

/// One task: a name plus its design-point row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskNode {
    /// Human-readable task name (unique names are recommended, not enforced).
    pub name: String,
    /// Design points sorted by ascending duration / descending current.
    pub points: Vec<DesignPoint>,
}

/// A validated directed acyclic task graph with uniform design-point count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "RawTaskGraph", into = "RawTaskGraph")]
pub struct TaskGraph {
    tasks: Vec<TaskNode>,
    preds: Vec<Vec<TaskId>>,
    succs: Vec<Vec<TaskId>>,
    point_count: usize,
}

impl TaskGraph {
    /// Starts building a graph.
    pub fn builder() -> TaskGraphBuilder {
        TaskGraphBuilder::default()
    }

    /// Number of tasks `n`.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of design points per task `m` (uniform by construction).
    pub fn point_count(&self) -> usize {
        self.point_count
    }

    /// Iterator over all task ids in index order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len()).map(TaskId)
    }

    /// The task node for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (ids from this graph never are).
    pub fn task(&self, id: TaskId) -> &TaskNode {
        &self.tasks[id.0]
    }

    /// The task's name.
    pub fn name(&self, id: TaskId) -> &str {
        &self.tasks[id.0].name
    }

    /// The design point `point` of task `id`.
    pub fn point(&self, id: TaskId, point: PointId) -> &DesignPoint {
        &self.tasks[id.0].points[point.0]
    }

    /// Execution time `D[i][j]`.
    pub fn duration(&self, id: TaskId, point: PointId) -> Minutes {
        self.point(id, point).duration
    }

    /// Current `I[i][j]`.
    pub fn current(&self, id: TaskId, point: PointId) -> MilliAmps {
        self.point(id, point).current
    }

    /// Direct predecessors (parents) of `id`.
    pub fn preds(&self, id: TaskId) -> &[TaskId] {
        &self.preds[id.0]
    }

    /// Direct successors (children) of `id`.
    pub fn succs(&self, id: TaskId) -> &[TaskId] {
        &self.succs[id.0]
    }

    /// All edges as `(from, to)` pairs in deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = (TaskId, TaskId)> + '_ {
        self.succs
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (TaskId(u), v)))
    }

    /// Number of edges `e`.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// Tasks with no predecessors.
    pub fn sources(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|&t| self.preds(t).is_empty())
            .collect()
    }

    /// Tasks with no successors.
    pub fn sinks(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|&t| self.succs(t).is_empty())
            .collect()
    }

    /// Looks a task up by name (linear scan; graphs here are small).
    pub fn find(&self, name: &str) -> Option<TaskId> {
        self.tasks.iter().position(|t| t.name == name).map(TaskId)
    }

    /// Builds a graph from pre-assembled parts — the validation entry point
    /// shared by the serde path and [`crate::io`]'s typed parser. With
    /// `reject_duplicate_edges`, a repeated `(from, to)` pair is a
    /// [`TaskGraphError::DuplicateEdge`] instead of being silently folded
    /// (the builder's behaviour for programmatic construction).
    ///
    /// # Errors
    ///
    /// Every [`TaskGraphError`] variant is reachable.
    pub fn from_parts(
        tasks: Vec<TaskNode>,
        edges: Vec<(usize, usize)>,
        reject_duplicate_edges: bool,
    ) -> Result<TaskGraph, TaskGraphError> {
        if reject_duplicate_edges {
            let mut seen = std::collections::HashSet::new();
            for &(u, v) in &edges {
                if !seen.insert((u, v)) {
                    return Err(TaskGraphError::DuplicateEdge { from: u, to: v });
                }
            }
        }
        let mut b = TaskGraph::builder();
        for t in tasks {
            b.task(t.name, t.points);
        }
        for (u, v) in edges {
            b.edge(TaskId(u), TaskId(v));
        }
        b.build()
    }
}

/// Incremental builder for [`TaskGraph`] (C-BUILDER).
#[derive(Debug, Clone, Default)]
pub struct TaskGraphBuilder {
    tasks: Vec<TaskNode>,
    edges: Vec<(usize, usize)>,
}

impl TaskGraphBuilder {
    /// Adds a task with its design points (any order; they are sorted by
    /// ascending duration at build time) and returns its id.
    pub fn task(&mut self, name: impl Into<String>, points: Vec<DesignPoint>) -> TaskId {
        let id = TaskId(self.tasks.len());
        self.tasks.push(TaskNode {
            name: name.into(),
            points,
        });
        id
    }

    /// Declares that `to` depends on `from` (duplicates are deduplicated at
    /// build time).
    pub fn edge(&mut self, from: TaskId, to: TaskId) -> &mut Self {
        self.edges.push((from.0, to.0));
        self
    }

    /// Declares several parents for one task.
    pub fn parents(&mut self, to: TaskId, from: impl IntoIterator<Item = TaskId>) -> &mut Self {
        for f in from {
            self.edge(f, to);
        }
        self
    }

    /// Validates and produces the graph.
    ///
    /// # Errors
    ///
    /// Every [`TaskGraphError`] variant is reachable; see its docs.
    pub fn build(&self) -> Result<TaskGraph, TaskGraphError> {
        if self.tasks.is_empty() {
            return Err(TaskGraphError::Empty);
        }
        let mut tasks = self.tasks.clone();
        let point_count = tasks[0].points.len();
        for t in &mut tasks {
            if t.points.is_empty() {
                return Err(TaskGraphError::NoDesignPoints {
                    task: t.name.clone(),
                });
            }
            if t.points.len() != point_count {
                return Err(TaskGraphError::NonUniformPointCount {
                    task: t.name.clone(),
                    expected: point_count,
                    found: t.points.len(),
                });
            }
            for (i, p) in t.points.iter().enumerate() {
                if !p.is_valid() {
                    return Err(TaskGraphError::InvalidDesignPoint {
                        task: t.name.clone(),
                        index: i,
                    });
                }
            }
            t.points.sort_by(|a, b| {
                batsched_battery::units::total_cmp(a.duration.value(), b.duration.value())
            });
            let monotone = t
                .points
                .windows(2)
                .all(|w| w[0].current.value() >= w[1].current.value());
            if !monotone {
                return Err(TaskGraphError::NonMonotoneCurrents {
                    task: t.name.clone(),
                });
            }
        }

        let n = tasks.len();
        let mut preds: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        let mut seen = std::collections::HashSet::new();
        for &(u, v) in &self.edges {
            if u >= n {
                return Err(TaskGraphError::UnknownTask { id: u });
            }
            if v >= n {
                return Err(TaskGraphError::UnknownTask { id: v });
            }
            if u == v {
                return Err(TaskGraphError::SelfLoop {
                    task: tasks[u].name.clone(),
                });
            }
            if seen.insert((u, v)) {
                succs[u].push(TaskId(v));
                preds[v].push(TaskId(u));
            }
        }
        for list in preds.iter_mut().chain(succs.iter_mut()) {
            list.sort();
        }

        // Kahn's algorithm detects cycles.
        let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut queue: Vec<usize> = indeg
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        let mut visited = 0usize;
        while let Some(u) = queue.pop() {
            visited += 1;
            for &TaskId(v) in &succs[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        if visited != n {
            let culprit = indeg.iter().position(|&d| d > 0).unwrap_or(0);
            return Err(TaskGraphError::Cycle {
                task: tasks[culprit].name.clone(),
            });
        }

        Ok(TaskGraph {
            tasks,
            preds,
            succs,
            point_count,
        })
    }
}

/// Serde-facing representation without invariants.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RawTaskGraph {
    tasks: Vec<TaskNode>,
    edges: Vec<(usize, usize)>,
}

impl From<TaskGraph> for RawTaskGraph {
    fn from(g: TaskGraph) -> Self {
        let edges = g.edges().map(|(a, b)| (a.0, b.0)).collect();
        Self {
            tasks: g.tasks,
            edges,
        }
    }
}

impl TryFrom<RawTaskGraph> for TaskGraph {
    type Error = TaskGraphError;

    fn try_from(raw: RawTaskGraph) -> Result<Self, Self::Error> {
        // Serialised graphs are interchange documents (often untrusted):
        // duplicate edges are rejected rather than deduplicated.
        TaskGraph::from_parts(raw.tasks, raw.edges, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design_point::DesignPoint;

    fn dp(current: f64, duration: f64) -> DesignPoint {
        DesignPoint::new(MilliAmps::new(current), Minutes::new(duration))
    }

    fn two_points() -> Vec<DesignPoint> {
        vec![dp(100.0, 1.0), dp(40.0, 2.0)]
    }

    #[test]
    fn builds_a_diamond() {
        let mut b = TaskGraph::builder();
        let a = b.task("A", two_points());
        let x = b.task("X", two_points());
        let y = b.task("Y", two_points());
        let z = b.task("Z", two_points());
        b.edge(a, x).edge(a, y);
        b.parents(z, [x, y]);
        let g = b.build().unwrap();
        assert_eq!(g.task_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.sources(), vec![a]);
        assert_eq!(g.sinks(), vec![z]);
        assert_eq!(g.preds(z), &[x, y]);
        assert_eq!(g.succs(a), &[x, y]);
        assert_eq!(g.find("Y"), Some(y));
        assert_eq!(g.find("nope"), None);
    }

    #[test]
    fn empty_graph_rejected() {
        assert_eq!(
            TaskGraph::builder().build().unwrap_err(),
            TaskGraphError::Empty
        );
    }

    #[test]
    fn no_points_rejected() {
        let mut b = TaskGraph::builder();
        b.task("A", vec![]);
        assert!(matches!(
            b.build().unwrap_err(),
            TaskGraphError::NoDesignPoints { .. }
        ));
    }

    #[test]
    fn non_uniform_m_rejected() {
        let mut b = TaskGraph::builder();
        b.task("A", two_points());
        b.task("B", vec![dp(10.0, 1.0)]);
        assert!(matches!(
            b.build().unwrap_err(),
            TaskGraphError::NonUniformPointCount {
                expected: 2,
                found: 1,
                ..
            }
        ));
    }

    #[test]
    fn invalid_point_rejected() {
        let mut b = TaskGraph::builder();
        b.task("A", vec![dp(10.0, 0.0), dp(5.0, 1.0)]);
        assert!(matches!(
            b.build().unwrap_err(),
            TaskGraphError::InvalidDesignPoint { index: 0, .. }
        ));
    }

    #[test]
    fn points_sorted_and_pareto_enforced() {
        let mut b = TaskGraph::builder();
        // Given slow-first; builder must sort by duration.
        b.task("A", vec![dp(40.0, 2.0), dp(100.0, 1.0)]);
        let g = b.build().unwrap();
        assert_eq!(g.duration(TaskId(0), PointId(0)), Minutes::new(1.0));
        assert_eq!(g.current(TaskId(0), PointId(0)), MilliAmps::new(100.0));

        let mut b = TaskGraph::builder();
        // Slower AND hungrier: not a pareto frontier.
        b.task("A", vec![dp(100.0, 1.0), dp(120.0, 2.0)]);
        assert!(matches!(
            b.build().unwrap_err(),
            TaskGraphError::NonMonotoneCurrents { .. }
        ));
    }

    #[test]
    fn self_loop_and_cycle_rejected() {
        let mut b = TaskGraph::builder();
        let a = b.task("A", two_points());
        b.edge(a, a);
        assert!(matches!(
            b.build().unwrap_err(),
            TaskGraphError::SelfLoop { .. }
        ));

        let mut b = TaskGraph::builder();
        let a = b.task("A", two_points());
        let c = b.task("B", two_points());
        b.edge(a, c).edge(c, a);
        assert!(matches!(
            b.build().unwrap_err(),
            TaskGraphError::Cycle { .. }
        ));
    }

    #[test]
    fn unknown_task_rejected() {
        let mut b = TaskGraph::builder();
        let a = b.task("A", two_points());
        b.edge(a, TaskId(7));
        assert!(matches!(
            b.build().unwrap_err(),
            TaskGraphError::UnknownTask { id: 7 }
        ));
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let mut b = TaskGraph::builder();
        let a = b.task("A", two_points());
        let c = b.task("B", two_points());
        b.edge(a, c).edge(a, c).edge(a, c);
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn serde_rejects_duplicate_edges_builder_dedups() {
        // Programmatic path: folded silently (see duplicate_edges_are_deduplicated).
        // Interchange path: typed rejection.
        let json = r#"{
            "tasks": [
                {"name":"A","points":[{"duration":1.0,"current":10.0,"voltage":1.0}]},
                {"name":"B","points":[{"duration":1.0,"current":10.0,"voltage":1.0}]}
            ],
            "edges": [[0,1],[0,1]]
        }"#;
        let err = serde_json::from_str::<TaskGraph>(json).unwrap_err();
        assert!(err.to_string().contains("listed more than once"), "{err}");

        let nodes = vec![
            TaskNode {
                name: "A".into(),
                points: two_points(),
            },
            TaskNode {
                name: "B".into(),
                points: two_points(),
            },
        ];
        let edges = vec![(0usize, 1usize), (0, 1)];
        assert_eq!(
            TaskGraph::from_parts(nodes.clone(), edges.clone(), true).unwrap_err(),
            TaskGraphError::DuplicateEdge { from: 0, to: 1 }
        );
        let g = TaskGraph::from_parts(nodes, edges, false).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn serde_round_trip_preserves_everything() {
        let mut b = TaskGraph::builder();
        let a = b.task("A", two_points());
        let c = b.task("B", two_points());
        b.edge(a, c);
        let g = b.build().unwrap();
        let json = serde_json::to_string(&g).unwrap();
        let back: TaskGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn serde_rejects_invalid_graphs() {
        // A cycle smuggled through the raw representation must fail.
        let json = r#"{
            "tasks": [
                {"name":"A","points":[{"duration":1.0,"current":10.0,"voltage":1.0}]},
                {"name":"B","points":[{"duration":1.0,"current":10.0,"voltage":1.0}]}
            ],
            "edges": [[0,1],[1,0]]
        }"#;
        assert!(serde_json::from_str::<TaskGraph>(json).is_err());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", TaskId(3)), "#3");
        assert_eq!(format!("{}", PointId(0)), "DP1");
    }
}
