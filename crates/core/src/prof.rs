//! Solver phase profiling: cumulative counters for the work the window
//! search actually did — rows scored in full vs. served by the
//! cross-window carry, repair-journal activity, σ-cache reuse, and
//! windows evaluated.
//!
//! The counters are compile-always and disarmed-cheap: each is a plain
//! `u64` add on a path that already does orders of magnitude more work
//! (a full row scores `m` candidates through the σ engine; the increment
//! is one register add). They live inside the scratch structures the
//! search already threads everywhere, so no signature changes and no
//! atomics on the hot path. A serving worker snapshots
//! [`SolverWorkspace::prof`](crate::algorithm::SolverWorkspace::prof)
//! before and after a request and diffs with [`Prof::since`].
//!
//! With the `parallel` feature, `evaluate_windows` runs each window on a
//! rayon worker holding its own thread-local buffers; those buffers'
//! counters are not folded back into the caller's workspace, so a
//! parallel build under-reports window/row counts (the sequential
//! service path — the measured configuration — is exact).

use serde::{Deserialize, Serialize};

/// Cumulative solver-phase counters (see the module docs for the
/// counting sites and the `parallel`-feature caveat).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Prof {
    /// Windows evaluated (`ChooseDesignPoints` sweeps, including the
    /// weighted-sequence re-costing's implicit window reuse is *not*
    /// counted — only full window evaluations).
    pub windows: u64,
    /// Windows entered with a matching cross-window carry (the previous
    /// window's per-row outcomes were reusable).
    pub carry_hits: u64,
    /// Windows evaluated from scratch (no usable carry).
    pub carry_misses: u64,
    /// Sweep rows scored in full: every candidate column of the window
    /// went through the suitability factors.
    pub rows_full: u64,
    /// Sweep rows served by the carry fast path: only the window's new
    /// fastest column was scored against the remembered winner.
    pub rows_carried: u64,
    /// Repair promotions recorded: one-shot journal entries plus, on the
    /// carried sweep, one per column step of each materialized repair
    /// run.
    pub journal_promotions: u64,
    /// Repair state undone: one-shot journal entries rolled back at row
    /// end plus carried-sweep chain entries dropped for
    /// re-materialization.
    pub journal_rollbacks: u64,
    /// σ-engine sequence evaluations.
    pub sigma_evals: u64,
    /// Sequence positions served from the σ suffix cache across those
    /// evaluations.
    pub sigma_reused: u64,
    /// Sequence positions recomputed (cache miss portion).
    pub sigma_fresh: u64,
}

impl Prof {
    /// The counter deltas accumulated since `earlier` was snapshotted
    /// (saturating, so a swapped or reset workspace yields zeros instead
    /// of wrapping).
    #[must_use]
    pub fn since(&self, earlier: &Prof) -> Prof {
        Prof {
            windows: self.windows.saturating_sub(earlier.windows),
            carry_hits: self.carry_hits.saturating_sub(earlier.carry_hits),
            carry_misses: self.carry_misses.saturating_sub(earlier.carry_misses),
            rows_full: self.rows_full.saturating_sub(earlier.rows_full),
            rows_carried: self.rows_carried.saturating_sub(earlier.rows_carried),
            journal_promotions: self
                .journal_promotions
                .saturating_sub(earlier.journal_promotions),
            journal_rollbacks: self
                .journal_rollbacks
                .saturating_sub(earlier.journal_rollbacks),
            sigma_evals: self.sigma_evals.saturating_sub(earlier.sigma_evals),
            sigma_reused: self.sigma_reused.saturating_sub(earlier.sigma_reused),
            sigma_fresh: self.sigma_fresh.saturating_sub(earlier.sigma_fresh),
        }
    }

    /// Adds `other`'s counters into `self` (aggregation across requests).
    pub fn merge(&mut self, other: &Prof) {
        self.windows += other.windows;
        self.carry_hits += other.carry_hits;
        self.carry_misses += other.carry_misses;
        self.rows_full += other.rows_full;
        self.rows_carried += other.rows_carried;
        self.journal_promotions += other.journal_promotions;
        self.journal_rollbacks += other.journal_rollbacks;
        self.sigma_evals += other.sigma_evals;
        self.sigma_reused += other.sigma_reused;
        self.sigma_fresh += other.sigma_fresh;
    }

    /// `true` when every counter is zero.
    pub fn is_empty(&self) -> bool {
        *self == Prof::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_diffs_and_saturates() {
        let a = Prof {
            windows: 5,
            rows_full: 100,
            sigma_evals: 40,
            ..Prof::default()
        };
        let b = Prof {
            windows: 8,
            rows_full: 120,
            sigma_evals: 41,
            ..Prof::default()
        };
        let d = b.since(&a);
        assert_eq!((d.windows, d.rows_full, d.sigma_evals), (3, 20, 1));
        // A reset workspace (smaller counters) saturates to zero.
        let z = a.since(&b);
        assert!(z.is_empty());
    }

    #[test]
    fn merge_accumulates() {
        let mut total = Prof::default();
        total.merge(&Prof {
            windows: 2,
            carry_hits: 1,
            ..Prof::default()
        });
        total.merge(&Prof {
            windows: 3,
            journal_promotions: 7,
            ..Prof::default()
        });
        assert_eq!(total.windows, 5);
        assert_eq!(total.carry_hits, 1);
        assert_eq!(total.journal_promotions, 7);
    }
}
