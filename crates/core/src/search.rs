//! The windowed design-point search (Figures 1 and 2 of the paper).
//!
//! Terminology (all mirrored from the paper, indices 0-based here):
//!
//! * a **window** `[ws ..= m−1]` restricts which design-point columns may be
//!   assigned; `ws = 0` is the full matrix;
//! * while `ChooseDesignPoints` walks the sequence from the last position to
//!   the first, each task is **free** (still at the initial column `m−1`),
//!   **tagged** (its candidate column is being evaluated) or **fixed**;
//! * the **energy vector** `E` lists tasks by ascending average design-point
//!   energy; `CalculateDPF` repairs deadline violations by promoting the
//!   first free task in `E` one column at a time;
//! * the **suitability** of a candidate column is
//!   `B = SR + CR + ENR + CIF + DPF` (smaller is better), with `DPF = ∞`
//!   acting as the deadline-feasibility veto.

use crate::config::{FactorMask, SchedulerConfig};
use crate::error::SchedulerError;
use batsched_battery::eval::{SigmaEvaluator, SigmaScratch};
use batsched_battery::rv::RvModel;
use batsched_battery::units::{Energy, MilliAmpMinutes, Minutes};
use batsched_taskgraph::analysis::GraphStats;
use batsched_taskgraph::{PointId, TaskGraph, TaskId};
use serde::{Deserialize, Serialize};

/// Slop for floating-point deadline comparisons (durations are 0.1-minute
/// quantities; sums accumulate ~1e-13 of error).
pub(crate) const TIME_EPS: f64 = 1e-9;

/// Immutable context shared by every step of one scheduling run.
pub(crate) struct SearchContext<'g> {
    pub g: &'g TaskGraph,
    pub stats: GraphStats,
    pub mask: FactorMask,
    /// Tasks sorted by ascending average design-point energy — the paper's
    /// energy vector `E`.
    pub energy_order: Vec<TaskId>,
    pub deadline: f64,
    pub m: usize,
    /// Cached `D[task][column]` in minutes, row-major with stride `m`.
    pub dur: Vec<f64>,
    /// Cached `I[task][column]` in mA, row-major with stride `m`.
    pub cur: Vec<f64>,
    /// Cached per-point energy under `metric`, row-major with stride `m`.
    pub energy: Vec<f64>,
    /// σ-evaluation engine over the `(task, column)` entry catalogue,
    /// entry id = `task * m + column`. Built from the run's battery model.
    pub eval: SigmaEvaluator,
}

impl<'g> SearchContext<'g> {
    pub fn new(
        g: &'g TaskGraph,
        config: &SchedulerConfig,
        deadline: Minutes,
        model: RvModel,
    ) -> Self {
        let stats = GraphStats::compute(g, config.metric);
        let m = g.point_count();
        let n = g.task_count();
        let mut dur = Vec::with_capacity(n * m);
        let mut cur = Vec::with_capacity(n * m);
        let mut energy: Vec<f64> = Vec::with_capacity(n * m);
        for t in g.task_ids() {
            let pts = &g.task(t).points;
            dur.extend(pts.iter().map(|p| p.duration.value()));
            cur.extend(pts.iter().map(|p| p.current.value()));
            energy.extend(pts.iter().map(|p| p.energy(config.metric).value()));
        }
        let mut energy_order: Vec<TaskId> = g.task_ids().collect();
        let avg: Vec<f64> = (0..n)
            .map(|t| energy[t * m..(t + 1) * m].iter().sum::<f64>() / m as f64)
            .collect();
        energy_order.sort_by(|a, b| {
            batsched_battery::units::total_cmp(avg[a.index()], avg[b.index()])
                .then(a.index().cmp(&b.index()))
        });
        let eval = crate::schedule::graph_evaluator(g, &model);
        Self {
            g,
            stats,
            mask: config.factor_mask,
            energy_order,
            deadline: deadline.value(),
            m,
            dur,
            cur,
            energy,
            eval,
        }
    }

    /// Catalogue entry id of `(task, column)` in [`Self::eval`].
    #[inline]
    pub fn entry(&self, t: TaskId, col: usize) -> u32 {
        crate::schedule::entry_id(t, self.m, PointId(col))
    }

    /// σ and makespan of running `seq` with the task-indexed `assignment`,
    /// through the evaluation engine.
    pub fn cost_of(
        &self,
        seq: &[TaskId],
        assignment: &[PointId],
        scratch: &mut EvalBuffers,
    ) -> (MilliAmpMinutes, Minutes) {
        crate::schedule::eval_assignment_cost(
            &self.eval,
            self.m,
            seq,
            assignment,
            &mut scratch.entries,
            &mut scratch.sigma,
        )
    }

    #[inline]
    fn d(&self, t: TaskId, col: usize) -> f64 {
        self.dur[t.index() * self.m + col]
    }

    #[inline]
    fn i(&self, t: TaskId, col: usize) -> f64 {
        self.cur[t.index() * self.m + col]
    }

    #[inline]
    fn e(&self, t: TaskId, col: usize) -> f64 {
        self.energy[t.index() * self.m + col]
    }

    /// `CT(k)`: makespan if every task runs in column `k` (0-based).
    pub fn column_time(&self, col: usize) -> f64 {
        (0..self.dur.len() / self.m)
            .map(|t| self.dur[t * self.m + col])
            .sum()
    }
}

/// The five suitability terms for one candidate design point, plus the
/// masked total. Exposed publicly so the Figure 4 reproduction and
/// downstream debugging tools can show the same numbers the paper tabulates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FactorBreakdown {
    /// Slack ratio `(d − t)/d` over fixed+tagged execution time.
    pub sr: f64,
    /// Current ratio `(I − I_min)/(I_max − I_min)`.
    pub cr: f64,
    /// Energy ratio of the repaired assignment.
    pub enr: f64,
    /// Current-increase fraction of the repaired assignment.
    pub cif: f64,
    /// Design-point fraction (∞ when the deadline cannot be repaired).
    pub dpf: f64,
}

impl FactorBreakdown {
    /// The suitability `B` under `mask` — disabled factors contribute zero,
    /// except that an infinite DPF (deadline veto) always propagates.
    pub fn total(&self, mask: FactorMask) -> f64 {
        if self.dpf.is_infinite() {
            return f64::INFINITY;
        }
        let mut b = 0.0;
        if mask.sr {
            b += self.sr;
        }
        if mask.cr {
            b += self.cr;
        }
        if mask.enr {
            b += self.enr;
        }
        if mask.cif {
            b += self.cif;
        }
        if mask.dpf {
            b += self.dpf;
        }
        b
    }
}

/// `CalculateFactors` (Fig. 2): CIF and ENR of a complete positional
/// assignment `stemp` for sequence `seq`.
pub(crate) fn calculate_factors(
    ctx: &SearchContext<'_>,
    seq: &[TaskId],
    stemp: &[usize],
) -> (f64, f64) {
    let n = seq.len();
    let mut rising = 0usize;
    let mut energy = 0.0;
    let mut prev_i = f64::NAN;
    for (pos, &t) in seq.iter().enumerate() {
        let col = stemp[pos];
        let i = ctx.i(t, col);
        if pos > 0 && prev_i < i {
            rising += 1;
        }
        prev_i = i;
        energy += ctx.e(t, col);
    }
    let cif = if n > 1 {
        rising as f64 / (n - 1) as f64
    } else {
        0.0
    };
    let enr = ctx.stats.energy_ratio(Energy::new(energy));
    (cif, enr)
}

/// The per-row base sums of `CalculateDPF`: makespan and energy of every
/// position *except* the tagged one. One definition of the accumulation
/// order, shared by the incremental kernel and the retained naive
/// reference, so the bit-identity equivalence story is by construction:
///
/// * [`RowBases::fresh`] is the position-order summation pass both one-shot
///   entry points use;
/// * [`RowBases::carry_down`] is the O(1) delta that advances a sweep from
///   row `i` to row `i − 1` — the kernel's carried chain and the reference
///   sweep call the *same* method, so their floating-point op sequences are
///   identical and any divergence is a bookkeeping bug, never float noise.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RowBases {
    /// Σ durations of all positions except the tagged one.
    pub rest_te: f64,
    /// Σ energies of all positions except the tagged one.
    pub rest_energy: f64,
}

impl RowBases {
    /// Fresh position-order summation skipping position `i` — the one
    /// accumulation order every cold path uses.
    pub(crate) fn fresh(
        ctx: &SearchContext<'_>,
        seq: &[TaskId],
        assign: &[usize],
        i: usize,
    ) -> Self {
        let mut rest_te = 0.0;
        let mut rest_energy = 0.0;
        for (pos, &t) in seq.iter().enumerate() {
            if pos != i {
                rest_te += ctx.d(t, assign[pos]);
                rest_energy += ctx.e(t, assign[pos]);
            }
        }
        Self {
            rest_te,
            rest_energy,
        }
    }

    /// Advances the bases from row `i` to row `i − 1` of a sweep: position
    /// `i` (just committed to column `col`) enters the rest set, position
    /// `i − 1` (currently at column `col_im1`, about to be tagged) leaves.
    pub(crate) fn carry_down(
        &mut self,
        ctx: &SearchContext<'_>,
        seq: &[TaskId],
        i: usize,
        col: usize,
        col_im1: usize,
    ) {
        self.rest_te += ctx.d(seq[i], col);
        self.rest_te -= ctx.d(seq[i - 1], col_im1);
        self.rest_energy += ctx.e(seq[i], col);
        self.rest_energy -= ctx.e(seq[i - 1], col_im1);
    }
}

/// One repair promotion recorded in the [`DpfScratch`] rollback journal:
/// position `pos` moved from `old_col` to `old_col − 1`. The scalar effects
/// (Δmakespan, Δenergy, Δrising-pairs, neighbour columns) live in the
/// scratch's prefix-sum arrays, indexed by journal prefix length.
#[derive(Debug, Clone, Copy)]
struct Promotion {
    pos: usize,
    old_col: usize,
}

/// One whole repair run of a carried sweep's persistent journal: the
/// consumed task (`u32::MAX` = tombstone, the task left the free set), the
/// columns of the task's left/right sequence neighbours at the run's state
/// (`u32::MAX` = no pair / tagged-adjacent, handled separately), and the
/// run's rising-pair delta over those pairs. Records are immutable once
/// discovered except for tombstoning and the tagged-adjacency patch.
#[derive(Debug, Clone, Copy)]
struct RunRec {
    task: u32,
    left: u32,
    right: u32,
    d_rising: i32,
}

/// Reusable state of the incremental `CalculateDPF` kernel.
///
/// One row evaluates every candidate column of one tagged position. The
/// paper's repair loop promotes the first free task in the energy vector
/// one column at a time until the deadline holds — and that promotion
/// sequence is *independent of the candidate column*: the candidate only
/// decides how deep into the sequence the repair must go. The kernel
/// therefore generates the sequence once per row, lazily, into a rollback
/// **journal** shared by all candidates (promotions are resumed, never
/// recomputed). The journal carries **prefix-sum arrays** — makespan,
/// energy, rising-pair deltas and the tagged position's neighbour columns,
/// indexed by journal prefix length — so a candidate finds its repair
/// depth by *binary search* (promotion steps never lengthen the makespan,
/// so the prefix sums are nonincreasing) and reads its repaired state in
/// O(1) instead of replaying `k` scalar updates. Per-column **occupancy
/// counters** (maintained under journal seeks) make the DPF distribution
/// sum O(m) instead of O(n·m). `end_row` undoes the journal — assignment,
/// occupancy and fixed-flags — restoring the caller's state exactly.
///
/// Rows can begin two ways: [`DpfScratch::begin_row`] does the fresh O(n)
/// preparation (the one-shot diagnostic path), while a
/// `ChooseDesignPoints` sweep carries the base sums, occupancy, rising
/// pairs and fixed flags from row to row in O(1)
/// ([`DpfScratch::begin_row_carried`]) — see [`RowBases`] for how the
/// carried chain stays bit-identical to the retained reference.
///
/// Cost per row: O(depth) journal generation (shared by all candidates)
/// plus O(log depth + m) per candidate — no clones, no full scans, zero
/// allocations after warm-up. The retained naive reference
/// (`calculate_dpf_reference`) shares the same floating-point accumulation
/// and is bit-identical; the equivalence proptests in `crates/core/tests`
/// hold the two together.
#[derive(Debug, Clone, Default)]
pub(crate) struct DpfScratch {
    /// Shared repair journal for the current row.
    journal: Vec<Promotion>,
    /// Prefix sums over the journal, indexed by prefix length `0..=len`:
    /// `s_te[k]` is the makespan delta after `k` promotions (nonincreasing —
    /// durations rise with column index), `s_energy[k]` the energy delta,
    /// `s_rising[k]` the rising-pair delta (excluding tagged-adjacent
    /// pairs), `nbr_im1[k]` / `nbr_ip1[k]` the tagged position's neighbour
    /// columns after `k` promotions.
    s_te: Vec<f64>,
    s_energy: Vec<f64>,
    s_rising: Vec<i32>,
    nbr_im1: Vec<usize>,
    nbr_ip1: Vec<usize>,
    /// Task-indexed "fixed in E" flags. Fresh rows copy the caller's state;
    /// carried sweeps own the array across rows (commits persist, journal
    /// fixes are rolled back by `end_row`).
    etemp: Vec<bool>,
    /// Cursor into `ctx.energy_order`: every earlier task is free or was
    /// skipped as fixed at skip time. One-shot rows reset it; carried
    /// sweeps let it persist, rewinding on journal truncation via the
    /// per-run cursor snapshots (runs consume tasks in energy order, so
    /// every dropped task lies at or beyond the rewind point).
    cursor: usize,
    /// No free task remains; the journal cannot be extended.
    exhausted: bool,
    /// Per-column occupancy of positions `< i`, valid at journal prefix
    /// `occ_k`.
    occ: Vec<u32>,
    occ_k: usize,
    /// Row constants (set by `begin_row` / `begin_row_carried`).
    i: usize,
    ws: usize,
    rest_te: f64,
    rest_energy: f64,
    /// Rising pairs excluding the two pairs adjacent to the tagged position,
    /// at journal prefix 0.
    rising0: i32,
    /// Output buffer of `suitability_row` (descending candidate column).
    row: Vec<(usize, FactorBreakdown)>,

    // --- run-level journal (carried sweeps only) -------------------------
    //
    // In a `ChooseDesignPoints` sweep every free position sits at column
    // m−1, so the repair journal has *run structure*: the first free task
    // in `E` is promoted column by column until it fixes at the window
    // floor, then the next task starts. The sweep journal therefore
    // records whole runs — O(1) per run instead of O(m) per step — with
    // the per-step state recovered from per-task cumulative tables
    // (`cum_te`/`cum_e`, built once per window) and the run-boundary
    // chains below. A repair state is `(r, s)`: `r` completed runs, the
    // current task `s` steps into its run (column `m−1−s`); its makespan
    // is `base + (r_sum[r] + cum_te[task][s])` — two rounded additions,
    // mirrored verbatim by the retained reference, and monotone
    // nonincreasing across the whole (r, s) order because the boundary
    // value `r_sum[r+1]` is *defined* as `r_sum[r] + cum_te[task][full]`
    // (the same bits the in-run chain ends on). Candidates binary-search
    // their stop state instead of replaying promotions.
    /// Steps per full run in the current sweep window: `m − 1 − ws`.
    run_len: usize,
    /// Per-task in-run cumulative deltas for the current window:
    /// `cum_te[t·(run_len+1) + s]` is the makespan delta after the task's
    /// first `s` promotions from column `m−1` (a sequential chain), and
    /// `cum_e` the energy counterpart. Built lazily on the window's first
    /// repair (`cum_built`).
    cum_te: Vec<f64>,
    cum_e: Vec<f64>,
    cum_built: bool,
    /// Per-run records of the persistent sweep journal, in discovery
    /// (= energy) order. The journal is *persistent across the sweep's
    /// rows*: advancing from row `i` to `i−1` removes exactly one task
    /// (the newly tagged `seq[i−1]`) from the free set — its record is
    /// tombstoned, every other record (with its neighbour snapshots and
    /// rising-pair delta, computed once at discovery) survives verbatim,
    /// and only the cheap boundary chains below are re-folded lazily over
    /// the survivors ([`Self::advance_row`] / [`Self::extend_chain`]).
    /// A task never re-enters the free set (tombstoned tasks become
    /// tagged, then committed), so the discovery cursor is monotone across
    /// the whole window.
    runs: Vec<RunRec>,
    /// Record index of each *materialized* run of the current row, in run
    /// order — a strictly increasing prefix of the surviving records.
    chain_src: Vec<u32>,
    /// Record index the next materialization resumes from (skipping
    /// tombstones) before falling back to cursor discovery.
    rec_next: usize,
    /// Run-boundary makespan chain of the materialized runs, indexed by
    /// completed-run count `0..=len` — kept as its own array so candidates
    /// can binary-search it directly.
    r_sum: Vec<f64>,
    /// Run-boundary energy chain and rising-pair count at the full-run
    /// state relative to the row's journalled base (excluding
    /// tagged-adjacent pairs; index 0 holds zeros), indexed like `r_sum`.
    re_h: Vec<(f64, i32)>,
    /// Task-indexed record index, validated against `runs` before use
    /// (stale entries simply fail the cross-check; never reset wholesale).
    run_of: Vec<u32>,
    /// Committed column of the tagged position's right neighbour
    /// (constant per sweep row; `usize::MAX` at the last position).
    ip1_col: usize,
    /// Whether any candidate of the current row stopped at a repaired
    /// state — the row's dirty marker for the cross-window carry.
    row_repaired: bool,
    /// Profiling: repair promotions recorded (one-shot journal entries
    /// plus `run_len` per materialized sweep run). Cumulative; read
    /// through [`EvalBuffers::prof`].
    prof_promotions: u64,
    /// Profiling: repair state undone (one-shot journal entries rolled
    /// back at row end, carried-chain entries dropped for
    /// re-materialization).
    prof_rollbacks: u64,
}

impl DpfScratch {
    /// Resets the journal and its prefix arrays to the empty prefix, with
    /// the tagged position's initial neighbour columns at index 0.
    fn reset_journal(&mut self, col_im1: usize, col_ip1: usize) {
        self.journal.clear();
        self.s_te.clear();
        self.s_te.push(0.0);
        self.s_energy.clear();
        self.s_energy.push(0.0);
        self.s_rising.clear();
        self.s_rising.push(0);
        self.nbr_im1.clear();
        self.nbr_im1.push(col_im1);
        self.nbr_ip1.clear();
        self.nbr_ip1.push(col_ip1);
        self.occ_k = 0;
        self.exhausted = false;
    }

    /// Prepares the kernel for one tagged position `i` within window `ws`.
    /// `assign` is the row's positional snapshot (positions `> i` fixed,
    /// free positions wherever the caller put them — column `m−1` in the
    /// `ChooseDesignPoints` sweep); the tagged column is *not* read from
    /// `assign[i]`, it is passed per candidate. This is the fresh O(n)
    /// preparation; sweeps use [`Self::begin_row_carried`] instead.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's CalculateDPF state
    fn begin_row(
        &mut self,
        ctx: &SearchContext<'_>,
        seq: &[TaskId],
        assign: &[usize],
        fixed_in_e: &[bool],
        i: usize,
        ws: usize,
    ) {
        let n = seq.len();
        self.cursor = 0;
        self.i = i;
        self.ws = ws;
        self.etemp.clear();
        self.etemp.extend_from_slice(fixed_in_e);
        self.etemp[seq[i].index()] = true; // the tagged task is fixed in E
        self.occ.clear();
        self.occ.resize(ctx.m, 0);
        for &col in &assign[..i] {
            self.occ[col] += 1;
        }
        let bases = RowBases::fresh(ctx, seq, assign, i);
        self.rest_te = bases.rest_te;
        self.rest_energy = bases.rest_energy;
        let mut rising = 0i32;
        for pos in 1..n {
            if pos != i && pos != i + 1 {
                rising +=
                    (ctx.i(seq[pos - 1], assign[pos - 1]) < ctx.i(seq[pos], assign[pos])) as i32;
            }
        }
        self.rising0 = rising;
        let col_im1 = if i > 0 { assign[i - 1] } else { usize::MAX };
        let col_ip1 = if i + 1 < n { assign[i + 1] } else { usize::MAX };
        self.reset_journal(col_im1, col_ip1);
    }

    /// The journal record index of task `t`, if the task has been
    /// discovered (and not tombstoned).
    fn rec_index_of(&self, t: TaskId) -> Option<usize> {
        let r = *self.run_of.get(t.index())? as usize;
        (r < self.runs.len() && self.runs[r].task == t.index() as u32).then_some(r)
    }

    /// Prepares a carried sweep: fixed flags owned by the scratch (only the
    /// pinned last task set), an empty persistent run journal, and the
    /// window's run length. The per-task cumulative tables are built
    /// lazily on the first repair ([`Self::ensure_cum_tables`]) so a
    /// fully-carried clean window never pays for them. The per-row state
    /// then advances through [`Self::begin_row_carried`] /
    /// [`Self::advance_row`].
    fn begin_sweep(&mut self, ctx: &SearchContext<'_>, seq: &[TaskId], ws: usize) {
        self.ws = ws;
        self.etemp.clear();
        self.etemp.resize(ctx.g.task_count(), false);
        self.etemp[seq[seq.len() - 1].index()] = true; // the pinned last task
        self.cursor = 0;
        self.runs.clear();
        self.chain_src.clear();
        self.rec_next = 0;
        self.r_sum.clear();
        self.r_sum.push(0.0);
        self.re_h.clear();
        self.re_h.push((0.0, 0));
        self.run_of.resize(ctx.g.task_count(), u32::MAX);
        self.run_len = ctx.m - 1 - ws;
        self.cum_built = false;
    }

    /// Builds the per-task in-run cumulative delta tables for the current
    /// window — the only O(n·m) piece of a window's repair machinery,
    /// deferred until some candidate actually needs a repair.
    fn ensure_cum_tables(&mut self, ctx: &SearchContext<'_>) {
        if self.cum_built {
            return;
        }
        self.cum_built = true;
        let m = ctx.m;
        let stride = self.run_len + 1;
        let tasks = ctx.g.task_count();
        self.cum_te.clear();
        self.cum_te.resize(tasks * stride, 0.0);
        self.cum_e.clear();
        self.cum_e.resize(tasks * stride, 0.0);
        for t in 0..tasks {
            let task = TaskId(t);
            for s in 0..self.run_len {
                let c = m - 1 - s;
                self.cum_te[t * stride + s + 1] =
                    self.cum_te[t * stride + s] + (ctx.d(task, c - 1) - ctx.d(task, c));
                self.cum_e[t * stride + s + 1] =
                    self.cum_e[t * stride + s] + (ctx.e(task, c - 1) - ctx.e(task, c));
            }
        }
    }

    /// O(1) row preparation from sweep-carried state: base sums, rising
    /// pairs and neighbour columns come from the caller's carried chain,
    /// the fixed flags and the reusable journal prefix are already in
    /// place from the previous row's [`Self::advance_row`].
    fn begin_row_carried(
        &mut self,
        ctx: &SearchContext<'_>,
        seq: &[TaskId],
        i: usize,
        bases: RowBases,
        rising0: i32,
        col_ip1: usize,
    ) {
        self.i = i;
        self.etemp[seq[i].index()] = true; // the tagged task is fixed in E
        self.rest_te = bases.rest_te;
        self.rest_energy = bases.rest_energy;
        self.rising0 = rising0;
        self.ip1_col = col_ip1;
        self.row_repaired = false;
        self.exhausted = false;
        let _ = ctx;
    }

    /// Drops materialized runs from chain position `cpos` on (their
    /// records stay in the shadow for cheap re-materialization).
    fn truncate_chain(&mut self, cpos: usize) {
        if cpos < self.chain_src.len() {
            self.prof_rollbacks += (self.chain_src.len() - cpos) as u64;
            self.chain_src.truncate(cpos);
            self.r_sum.truncate(cpos + 1);
            self.re_h.truncate(cpos + 1);
            self.rec_next = self.chain_src.last().map_or(0, |&s| s as usize + 1);
        }
    }

    /// Advances the persistent journal from row `i` to row `i−1`: the
    /// newly tagged `seq[i−1]` leaves the free set, so its record is
    /// tombstoned and the materialized chain re-folds from its rank; every
    /// other record survives verbatim. The one record whose rising-pair
    /// delta referenced the pair `(i−2, i−1)` — tagged-adjacent from now
    /// on — is patched (using its snapshot of `seq[i−1]`'s column at the
    /// time), with its chain entries dropped for re-materialization.
    fn advance_row(&mut self, ctx: &SearchContext<'_>, seq: &[TaskId], i: usize) {
        let t_next = seq[i - 1];
        if let Some(idx) = self.rec_index_of(t_next) {
            let cpos = self.chain_src.partition_point(|&s| (s as usize) < idx);
            self.truncate_chain(cpos);
            self.runs[idx].task = u32::MAX; // tombstone: tagged, then committed
        }
        if i >= 2 {
            if let Some(idx) = self.rec_index_of(seq[i - 2]) {
                if self.runs[idx].right != u32::MAX {
                    let q = seq[i - 2];
                    // The snapshot column seq[i−1] held at this record's
                    // state (m−1, or the floor if it was consumed first).
                    let ri = ctx.i(seq[i - 1], self.runs[idx].right as usize);
                    let delta = (ctx.i(q, self.ws) < ri) as i32 - (ctx.i(q, ctx.m - 1) < ri) as i32;
                    self.runs[idx].d_rising -= delta;
                    self.runs[idx].right = u32::MAX;
                    let cpos = self.chain_src.partition_point(|&s| (s as usize) < idx);
                    self.truncate_chain(cpos);
                }
            }
        }
    }

    /// Folds record `idx` into the row's materialized chain.
    fn materialize(&mut self, idx: usize) {
        self.prof_promotions += self.run_len as u64;
        let rec = self.runs[idx];
        let t = rec.task as usize;
        let stride = self.run_len + 1;
        let r = self.chain_src.len();
        self.chain_src.push(idx as u32);
        self.r_sum
            .push(self.r_sum[r] + self.cum_te[t * stride + self.run_len]);
        let (re, h) = self.re_h[r];
        self.re_h
            .push((re + self.cum_e[t * stride + self.run_len], h + rec.d_rising));
    }

    /// Materializes the next repair run of the row — the next surviving
    /// shadow record, or, past the shadow, the first free task in `E`
    /// promoted from column `m−1` down to the window floor (discovered
    /// once per window: its neighbour snapshots and rising-pair delta are
    /// recorded for every later row to reuse). Returns `false` when no
    /// free task remains (or the window has a single column, so no
    /// promotion is possible).
    fn extend_chain(&mut self, ctx: &SearchContext<'_>, seq: &[TaskId], pos_of: &[usize]) -> bool {
        if self.exhausted {
            return false;
        }
        if self.run_len == 0 {
            self.exhausted = true;
            return false;
        }
        self.ensure_cum_tables(ctx);
        while self.rec_next < self.runs.len() {
            let idx = self.rec_next;
            self.rec_next += 1;
            if self.runs[idx].task != u32::MAX {
                self.materialize(idx);
                return true;
            }
        }
        // Discovery: the cursor is monotone for the whole window (tasks
        // never re-enter the free set), so every task is snapshotted once.
        while self.cursor < ctx.energy_order.len()
            && self.etemp[ctx.energy_order[self.cursor].index()]
        {
            self.cursor += 1;
        }
        let Some(&q) = ctx.energy_order.get(self.cursor) else {
            self.exhausted = true;
            return false;
        };
        self.cursor += 1;
        let p = pos_of[q.index()];
        debug_assert!(p < self.i, "free tasks precede the tagged position");
        let ws = self.ws;
        let m1 = ctx.m - 1;
        let i_old = ctx.i(q, m1);
        let i_new = ctx.i(q, ws);
        // Snapshot the neighbour columns at this record's state (free
        // neighbours sit at the floor once consumed, at m−1 otherwise;
        // pairs touching the tagged position are excluded — they are
        // re-derived per repair state) and the full move's rising-pair
        // delta over those pairs.
        let mut d_rising = 0i32;
        let left = if p > 0 {
            let ln = seq[p - 1];
            let lcol = if self.etemp[ln.index()] { ws } else { m1 };
            let li = ctx.i(ln, lcol);
            d_rising += (li < i_new) as i32 - (li < i_old) as i32;
            lcol as u32
        } else {
            u32::MAX
        };
        let right = if p + 1 != self.i {
            debug_assert!(p + 1 < self.i, "free positions precede the tagged one");
            let rn = seq[p + 1];
            let rcol = if self.etemp[rn.index()] { ws } else { m1 };
            let ri = ctx.i(rn, rcol);
            d_rising += (i_new < ri) as i32 - (i_old < ri) as i32;
            rcol as u32
        } else {
            u32::MAX
        };
        let idx = self.runs.len();
        self.etemp[q.index()] = true; // fixed at the window floor, for good
        self.run_of[q.index()] = idx as u32;
        self.runs.push(RunRec {
            task: q.index() as u32,
            left,
            right,
            d_rising,
        });
        self.rec_next = self.runs.len();
        self.materialize(idx);
        true
    }

    /// `CalculateDPF` for candidate column `j` of a carried sweep row.
    /// Extends the shared run journal until this candidate's deadline
    /// holds, binary-searches the run boundaries (then the stop run's
    /// in-run chain) for the exact repair state the one-promotion-at-a-
    /// time loop stops at, and scores it in O(1): the DPF occupancy is
    /// closed-form (`r` tasks at the floor, at most one mid-run), the
    /// rising count comes from the `h` chain plus two pair corrections.
    fn sweep_candidate(
        &mut self,
        ctx: &SearchContext<'_>,
        seq: &[TaskId],
        pos_of: &[usize],
        j: usize,
    ) -> (f64, f64, f64) {
        let n = seq.len();
        let i = self.i;
        let d = ctx.deadline;
        let m1 = ctx.m - 1;
        let base_te = self.rest_te + ctx.d(seq[i], j);
        let base_energy = self.rest_energy + ctx.e(seq[i], j);
        let mut feasible = true;
        while base_te + self.r_sum[self.chain_src.len()] > d + TIME_EPS {
            if !self.extend_chain(ctx, seq, pos_of) {
                feasible = false;
                break;
            }
        }
        let len = self.chain_src.len();
        let stride = self.run_len + 1;
        // Stop state (r, s): r completed runs, current task s steps into
        // its run. `r_sum` and each in-run chain are exactly monotone
        // nonincreasing, and a run's final in-run value *is* the next
        // boundary value, so the two-level binary search lands on the same
        // state the sequential repair loop reaches.
        let (r, s, q) = if !feasible {
            (len, 0usize, None)
        } else {
            let rb = self.r_sum[..=len].partition_point(|&v| base_te + v > d + TIME_EPS);
            if rb == 0 {
                (0, 0, None)
            } else {
                let q = TaskId(self.runs[self.chain_src[rb - 1] as usize].task as usize);
                let cum = &self.cum_te[q.index() * stride..(q.index() + 1) * stride];
                let rs = self.r_sum[rb - 1];
                let s = cum.partition_point(|&cs| base_te + (rs + cs) > d + TIME_EPS);
                debug_assert!(s >= 1, "the boundary before rb did not satisfy");
                if s == self.run_len {
                    (rb, 0, None)
                } else {
                    (rb - 1, s, Some(q))
                }
            }
        };
        if r > 0 || q.is_some() || !feasible {
            self.row_repaired = true;
        }
        let (re_r, h_r) = self.re_h[r];
        let (te, energy) = if let Some(q) = q {
            let qi = q.index() * stride;
            (
                base_te + (self.r_sum[r] + self.cum_te[qi + s]),
                base_energy + (re_r + self.cum_e[qi + s]),
            )
        } else {
            (base_te + self.r_sum[r], base_energy + re_r)
        };
        let mut rising = self.rising0 + h_r;
        let c = m1 - s;
        if let Some(q) = q {
            // The mid-run task sits at column c, not the m−1 its chain
            // state assumes: correct its two (non-tagged-adjacent) pairs.
            let rec = self.runs[self.chain_src[r] as usize];
            let i_old = ctx.i(q, m1);
            let i_new = ctx.i(q, c);
            if rec.left != u32::MAX {
                let li = ctx.i(seq[pos_of[q.index()] - 1], rec.left as usize);
                rising += (li < i_new) as i32 - (li < i_old) as i32;
            }
            if rec.right != u32::MAX {
                let ri = ctx.i(seq[pos_of[q.index()] + 1], rec.right as usize);
                rising += (i_new < ri) as i32 - (i_old < ri) as i32;
            }
        }
        let i_tag = ctx.i(seq[i], j);
        if i > 0 {
            // The tagged-left neighbour's column at the stop state: the
            // materialized chain is the record-index-ordered prefix of the
            // survivors, so "consumed before run r" is one index compare.
            let col_im1 = match self.rec_index_of(seq[i - 1]) {
                Some(idx) if q.is_some() && self.chain_src[r] as usize == idx => c,
                Some(idx) if r > 0 && idx <= self.chain_src[r - 1] as usize => self.ws,
                _ => m1,
            };
            rising += (ctx.i(seq[i - 1], col_im1) < i_tag) as i32;
        }
        if i + 1 < n {
            rising += (i_tag < ctx.i(seq[i + 1], self.ip1_col)) as i32;
        }
        let cif = if n > 1 {
            rising as f64 / (n - 1) as f64
        } else {
            0.0
        };
        let enr = ctx.stats.energy_ratio(Energy::new(energy));
        if !feasible {
            return (enr, cif, f64::INFINITY);
        }
        let dpf = if i == 0 {
            (d - te) / d
        } else {
            let width_minus1 = ctx.m - 1 - self.ws;
            if width_minus1 == 0 {
                0.0
            } else {
                let factor = 1.0 / width_minus1 as f64;
                // Closed-form occupancy: `r` repaired tasks at the floor,
                // at most one mid-run at column c, everything else at the
                // weightless column m−1. Terms added in ascending column
                // order with the reference loop's exact expressions (its
                // zero-occupancy terms add +0.0, which preserves bits).
                let mut dpf = 0.0;
                if r > 0 {
                    dpf += width_minus1 as f64 * factor * r as f64 / i as f64;
                }
                if q.is_some() {
                    let coeff = (width_minus1 - (c - self.ws)) as f64;
                    dpf += coeff * factor * 1.0 / i as f64;
                }
                dpf
            }
        };
        (enr, cif, dpf)
    }

    /// Appends the next repair promotion to the journal, applying it to
    /// `assign` and extending the prefix-sum arrays. Returns `false` when
    /// no free task remains.
    fn extend_journal(
        &mut self,
        ctx: &SearchContext<'_>,
        seq: &[TaskId],
        pos_of: &[usize],
        assign: &mut [usize],
    ) -> bool {
        if self.exhausted {
            return false;
        }
        // First free task in ascending-energy order. Tasks only ever become
        // fixed during a row, so the cursor is monotone.
        while self.cursor < ctx.energy_order.len()
            && self.etemp[ctx.energy_order[self.cursor].index()]
        {
            self.cursor += 1;
        }
        let Some(&q) = ctx.energy_order.get(self.cursor) else {
            self.exhausted = true;
            return false;
        };
        let r = pos_of[q.index()];
        let c = assign[r];
        debug_assert!(c > self.ws, "free tasks never sit below the window start");
        let d_te = ctx.d(seq[r], c - 1) - ctx.d(seq[r], c);
        let d_energy = ctx.e(seq[r], c - 1) - ctx.e(seq[r], c);
        let i_old = ctx.i(seq[r], c);
        let i_new = ctx.i(seq[r], c - 1);
        let mut d_rising = 0i32;
        // Pairs (r−1, r) and (r, r+1), excluding any pair containing the
        // tagged position — those are re-derived per candidate from the
        // tracked neighbour columns.
        if r > 0 && r - 1 != self.i {
            let left = ctx.i(seq[r - 1], assign[r - 1]);
            d_rising += (left < i_new) as i32 - (left < i_old) as i32;
        }
        if r + 1 < seq.len() && r + 1 != self.i {
            let right = ctx.i(seq[r + 1], assign[r + 1]);
            d_rising += (i_new < right) as i32 - (i_old < right) as i32;
        }
        let k = self.journal.len();
        let nbr_im1 = if r + 1 == self.i {
            c - 1
        } else {
            self.nbr_im1[k]
        };
        let nbr_ip1 = if r == self.i + 1 {
            c - 1
        } else {
            self.nbr_ip1[k]
        };
        assign[r] = c - 1;
        if c - 1 == self.ws {
            // Promoted into the window's fastest column: no further moves.
            self.etemp[q.index()] = true;
        }
        self.prof_promotions += 1;
        self.journal.push(Promotion { pos: r, old_col: c });
        self.s_te.push(self.s_te[k] + d_te);
        self.s_energy.push(self.s_energy[k] + d_energy);
        self.s_rising.push(self.s_rising[k] + d_rising);
        self.nbr_im1.push(nbr_im1);
        self.nbr_ip1.push(nbr_ip1);
        true
    }

    /// Moves the occupancy counters to journal prefix `k`.
    fn occ_seek(&mut self, k: usize) {
        while self.occ_k < k {
            let p = self.journal[self.occ_k];
            if p.pos < self.i {
                self.occ[p.old_col] -= 1;
                self.occ[p.old_col - 1] += 1;
            }
            self.occ_k += 1;
        }
        while self.occ_k > k {
            self.occ_k -= 1;
            let p = self.journal[self.occ_k];
            if p.pos < self.i {
                self.occ[p.old_col - 1] -= 1;
                self.occ[p.old_col] += 1;
            }
        }
    }

    /// `CalculateDPF` for candidate column `j` of the prepared row:
    /// `(enr, cif, dpf)` on the repaired assignment, `dpf = ∞` when no
    /// repair meets the deadline. Extends the shared journal only as far
    /// as this candidate needs, then *binary-searches* the prefix sums for
    /// the exact repair depth the paper's one-step loop would stop at.
    fn candidate(
        &mut self,
        ctx: &SearchContext<'_>,
        seq: &[TaskId],
        pos_of: &[usize],
        assign: &mut [usize],
        j: usize,
    ) -> (f64, f64, f64) {
        let n = seq.len();
        let i = self.i;
        let d = ctx.deadline;
        let base_te = self.rest_te + ctx.d(seq[i], j);
        let base_energy = self.rest_energy + ctx.e(seq[i], j);
        // Resume the shared journal until this candidate's deadline holds
        // (or no free task remains).
        let mut feasible = true;
        while base_te + self.s_te[self.journal.len()] > d + TIME_EPS {
            if !self.extend_journal(ctx, seq, pos_of, assign) {
                feasible = false;
                break;
            }
        }
        // Minimal prefix `k` with `te ≤ d` — the state the one-promotion-
        // at-a-time loop stops at. `s_te` is nonincreasing, so the
        // predicate is monotone and binary search finds the same `k` the
        // sequential walk would.
        let k = if feasible {
            self.s_te[..=self.journal.len()].partition_point(|&s| base_te + s > d + TIME_EPS)
        } else {
            self.journal.len()
        };
        let te = base_te + self.s_te[k];
        let energy = base_energy + self.s_energy[k];
        let mut rising = self.rising0 + self.s_rising[k];
        let i_tag = ctx.i(seq[i], j);
        if i > 0 {
            rising += (ctx.i(seq[i - 1], self.nbr_im1[k]) < i_tag) as i32;
        }
        if i + 1 < n {
            rising += (i_tag < ctx.i(seq[i + 1], self.nbr_ip1[k])) as i32;
        }
        let cif = if n > 1 {
            rising as f64 / (n - 1) as f64
        } else {
            0.0
        };
        let enr = ctx.stats.energy_ratio(Energy::new(energy));
        if !feasible {
            return (enr, cif, f64::INFINITY);
        }
        let dpf = if i == 0 {
            // "If we are considering the last task, set DPF to the slack
            // ratio" — also where the published formula would divide by zero.
            (d - te) / d
        } else {
            let width_minus1 = ctx.m - 1 - self.ws;
            if width_minus1 == 0 {
                0.0
            } else {
                let factor = 1.0 / width_minus1 as f64;
                self.occ_seek(k);
                let mut dpf = 0.0;
                // Window-relative columns: the window's fastest column `ws`
                // carries the largest weight, decaying linearly to zero at
                // the leanest column `m−1`. For the full window (ws = 0)
                // this is exactly eq. 2's (m−k)·f weights and the Figure 4
                // example; for narrow windows it is the only reading
                // consistent with the published Table 3 assignments (see
                // DESIGN.md §4).
                for w in 0..width_minus1 {
                    let col = self.ws + w;
                    let coeff = (width_minus1 - w) as f64;
                    dpf += coeff * factor * self.occ[col] as f64 / i as f64;
                }
                dpf
            }
        };
        (enr, cif, dpf)
    }

    /// Rolls the per-step journal back out of `assign` (and the occupancy
    /// counters and fixed flags with it), restoring the row's initial
    /// state. One-shot rows only — a carried sweep's run-level journal
    /// persists across rows and is pruned by [`Self::advance_row`].
    fn end_row(&mut self, seq: &[TaskId], assign: &mut [usize]) {
        self.prof_rollbacks += self.journal.len() as u64;
        self.occ_seek(0);
        for p in self.journal.iter().rev() {
            assign[p.pos] = p.old_col;
            if p.old_col - 1 == self.ws {
                // This promotion fixed the task at the window floor; free
                // it again (the tagged / committed flags are not journal
                // entries and survive).
                self.etemp[seq[p.pos].index()] = false;
            }
        }
        self.journal.clear();
    }
}

/// `CalculateDPF` (Fig. 2): repairs the tentative assignment until the
/// deadline is met by promoting the first free task in the energy vector one
/// column at a time, then scores the design-point distribution.
///
/// One-shot convenience over the incremental [`DpfScratch`] kernel (the
/// diagnostic and unit-test entry point — `suitability_row` drives the
/// kernel directly and shares the repair journal across candidates).
///
/// * `stemp` — positional assignment snapshot: positions `> i` fixed,
///   position `i` tagged at its candidate column, positions `< i` still at
///   the initial column `m−1`. The caller's state is untouched.
/// * `fixed_in_e` — task-indexed "fixed in E" flags covering positions `>= i`.
///
/// Returns `(enr, cif, dpf)` computed on the repaired assignment; `dpf` is
/// `∞` when no repair meets the deadline.
pub(crate) fn calculate_dpf(
    ctx: &SearchContext<'_>,
    seq: &[TaskId],
    pos_of: &[usize],
    stemp_in: &[usize],
    fixed_in_e: &[bool],
    i: usize,
    ws: usize,
) -> (f64, f64, f64) {
    let mut scratch = DpfScratch::default();
    let mut assign = stemp_in.to_vec();
    scratch.begin_row(ctx, seq, &assign, fixed_in_e, i, ws);
    scratch.candidate(ctx, seq, pos_of, &mut assign, stemp_in[i])
}

/// The retained naive `CalculateDPF` — the pre-incremental implementation
/// (fresh state clones per call, O(n) first-free scans per promotion, O(i)
/// occupancy scans per column), kept as the equivalence reference for the
/// [`DpfScratch`] kernel. The base sums come from the shared
/// [`RowBases::fresh`] helper and the makespan/energy accumulations follow
/// the kernel's arithmetic (`(rest + tagged) + running promotion sum`) so
/// the proptests can demand **bit-identical** `(enr, cif, dpf)` triples:
/// any divergence is a bookkeeping bug, never float noise.
pub(crate) fn calculate_dpf_reference(
    ctx: &SearchContext<'_>,
    seq: &[TaskId],
    pos_of: &[usize],
    stemp_in: &[usize],
    fixed_in_e: &[bool],
    i: usize,
    ws: usize,
) -> (f64, f64, f64) {
    let bases = RowBases::fresh(ctx, seq, stemp_in, i);
    calculate_dpf_reference_with(ctx, seq, pos_of, stemp_in, fixed_in_e, i, ws, bases)
}

/// [`calculate_dpf_reference`] with explicit row base sums, so the
/// reference sweep (`choose_design_points_reference`) can carry them
/// across rows through the same [`RowBases::carry_down`] chain the kernel
/// uses. The repair loop keeps a running promotion sum and evaluates
/// `te = base + sum` each step — exactly the kernel's prefix-sum
/// arithmetic, promotion by promotion.
#[allow(clippy::too_many_arguments)] // mirrors the paper's CalculateDPF state
pub(crate) fn calculate_dpf_reference_with(
    ctx: &SearchContext<'_>,
    seq: &[TaskId],
    pos_of: &[usize],
    stemp_in: &[usize],
    fixed_in_e: &[bool],
    i: usize,
    ws: usize,
    bases: RowBases,
) -> (f64, f64, f64) {
    let m = ctx.m;
    let d = ctx.deadline;
    let mut stemp = stemp_in.to_vec();
    let mut etemp = fixed_in_e.to_vec();
    etemp[seq[i].index()] = true; // the tagged task is fixed in E

    let base_te = bases.rest_te + ctx.d(seq[i], stemp[i]);
    let base_energy = bases.rest_energy + ctx.e(seq[i], stemp[i]);
    let mut s_te = 0.0;
    let mut s_energy = 0.0;
    let mut te = base_te + s_te;

    let mut feasible = true;
    while te > d + TIME_EPS {
        // First free task in ascending-energy order.
        let q = ctx.energy_order.iter().copied().find(|t| !etemp[t.index()]);
        let Some(q) = q else {
            feasible = false;
            break;
        };
        let r = pos_of[q.index()];
        let c = stemp[r];
        debug_assert!(c > ws, "free tasks never sit below the window start");
        s_te += ctx.d(seq[r], c - 1) - ctx.d(seq[r], c);
        s_energy += ctx.e(seq[r], c - 1) - ctx.e(seq[r], c);
        stemp[r] = c - 1;
        if c - 1 == ws {
            // Promoted into the window's fastest column: no further moves.
            etemp[q.index()] = true;
        }
        te = base_te + s_te;
    }
    let energy = base_energy + s_energy;

    let (cif, _scan_enr) = calculate_factors(ctx, seq, &stemp);
    let enr = ctx.stats.energy_ratio(Energy::new(energy));
    if !feasible {
        return (enr, cif, f64::INFINITY);
    }
    let dpf = if i == 0 {
        (d - te) / d
    } else {
        let width_minus1 = m - 1 - ws;
        if width_minus1 == 0 {
            0.0
        } else {
            let factor = 1.0 / width_minus1 as f64;
            let mut dpf = 0.0;
            for w in 0..width_minus1 {
                let col = ws + w;
                let coeff = (width_minus1 - w) as f64;
                let count = (0..i).filter(|&y| stemp[y] == col).count();
                dpf += coeff * factor * count as f64 / i as f64;
            }
            dpf
        }
    };
    (enr, cif, dpf)
}

/// The suitability table for one tagged position: `FactorBreakdown` for each
/// candidate column `j ∈ [ws ..= m−1]` given the already-fixed suffix,
/// written into `scratch`'s row buffer (descending column, matching the
/// paper's scan order). Candidates are *evaluated* ascending so the repair
/// journal extends monotonically: leaner candidates resume the promotions
/// faster ones already recorded.
/// Used by `ChooseDesignPoints`, the Figure 4 reproduction and tests.
#[allow(clippy::too_many_arguments)] // mirrors the paper's CalculateFactors state
pub(crate) fn suitability_row<'s>(
    ctx: &SearchContext<'_>,
    seq: &[TaskId],
    pos_of: &[usize],
    assign: &mut [usize],
    fixed_in_e: &[bool],
    tsum: f64,
    i: usize,
    ws: usize,
    scratch: &'s mut DpfScratch,
) -> &'s [(usize, FactorBreakdown)] {
    let m = ctx.m;
    scratch.begin_row(ctx, seq, assign, fixed_in_e, i, ws);
    scratch.row.clear();
    for j in ws..m {
        let ttemp = tsum + ctx.d(seq[i], j);
        let sr = (ctx.deadline - ttemp) / ctx.deadline;
        let cr = ctx
            .stats
            .current_ratio(batsched_battery::units::MilliAmps::new(ctx.i(seq[i], j)));
        let (enr, cif, dpf) = scratch.candidate(ctx, seq, pos_of, assign, j);
        scratch.row.push((
            j,
            FactorBreakdown {
                sr,
                cr,
                enr,
                cif,
                dpf,
            },
        ));
    }
    scratch.end_row(seq, assign);
    scratch.row.reverse();
    &scratch.row
}

/// Working buffers of one `ChooseDesignPoints` sweep, owned by
/// [`EvalBuffers`] so the whole window search is allocation-free after
/// warm-up.
#[derive(Debug, Clone, Default)]
pub(crate) struct ChooseBuffers {
    /// Positional assignment being built (the result lives here).
    pub(crate) assign: Vec<usize>,
    /// Task-indexed position lookup for the current sequence.
    pos_of: Vec<usize>,
    /// Task-indexed "fixed in E" flags (only used by the carry-disabled
    /// bench baseline; carried sweeps own their flags in [`DpfScratch`]).
    fixed_in_e: Vec<bool>,
}

/// What one `ChooseDesignPoints` row leaves behind for the next window:
/// the committed column, the winning suitability, and whether the whole
/// candidate row was repair-free (empty journal).
#[derive(Debug, Clone, Copy, Default)]
struct RowCarry {
    col: usize,
    best_b: f64,
    repair_free: bool,
}

/// Cross-window carry: what `EvaluateWindows` remembers from window
/// `ws + 1` when it evaluates window `ws` for the same sequence.
///
/// When a row's suffix state is unchanged from the previous window (every
/// deeper row committed the same column and the pinned last column agrees)
/// *and* the row was repair-free there, every old candidate's factor
/// breakdown is bit-identical in the new window: SR/CR/ENR depend only on
/// the (identical) base chains, the repaired assignment is the unrepaired
/// one, and the DPF occupancy sum is exactly zero in both windows (all
/// free prefix positions sit at column `m−1`, which carries no weight).
/// The row then reduces to scoring the *one* new candidate — the window's
/// new fastest column — against the remembered winner. Rows with repairs,
/// or below the first changed choice, are re-evaluated in full; the dirty
/// set is keyed on the promotion journal (`repair_free`).
#[derive(Debug, Clone, Default)]
pub(crate) struct WindowCarry {
    valid: bool,
    /// Identity of the evaluator (hence the run's `SearchContext`) the
    /// records belong to — evaluator ids are globally unique, so a carry
    /// can never leak across runs, graphs or battery models.
    eval_id: u64,
    ws: usize,
    deadline: f64,
    mask: FactorMask,
    seq: Vec<TaskId>,
    last_col: usize,
    /// Previous window's per-row records, indexed by position.
    rows: Vec<RowCarry>,
    /// Scratch for the window being evaluated (swapped into `rows`).
    next: Vec<RowCarry>,
}

impl WindowCarry {
    /// Whether the stored records describe window `ws + 1` of exactly this
    /// search state.
    fn matches(&self, ctx: &SearchContext<'_>, seq: &[TaskId], ws: usize) -> bool {
        self.valid
            && self.eval_id == ctx.eval.id()
            && self.ws == ws + 1
            && self.deadline.to_bits() == ctx.deadline.to_bits()
            && self.mask == ctx.mask
            && self.seq == seq
    }
}

/// `ChooseDesignPoints` (Fig. 1): positional assignment for `seq` within the
/// window `[ws ..= m−1]`, left in `buffers.choose.assign`.
///
/// The sweep carries its row state incrementally (see [`DpfScratch`] and
/// [`RowBases`]) and, when `buffers` last evaluated window `ws + 1` of the
/// same search state, reuses the previous window's per-row outcomes to
/// skip re-scoring rows the one-column widening cannot change (see
/// [`WindowCarry`]). Results are bit-identical to evaluating the window in
/// isolation — the carry only skips work whose outcome is provably the
/// same bits.
///
/// # Errors
///
/// [`SchedulerError::WindowSearchFailed`] if some position has no finite-`B`
/// column — unreachable when `CT(ws) <= d` (invariant argued in the module
/// tests), kept as a typed error for defence in depth.
pub(crate) fn choose_design_points_into(
    ctx: &SearchContext<'_>,
    seq: &[TaskId],
    ws: usize,
    buffers: &mut EvalBuffers,
) -> Result<(), SchedulerError> {
    let n = seq.len();
    let m = ctx.m;
    let tasks = ctx.g.task_count();
    let d = ctx.deadline;
    let EvalBuffers {
        dpf: scratch,
        choose,
        carry,
        carry_disabled,
        sweep_prof,
        ..
    } = buffers;
    let carried = !*carry_disabled && carry.matches(ctx, seq, ws);
    if carried {
        sweep_prof.carry_hits += 1;
    } else {
        sweep_prof.carry_misses += 1;
    }
    // Invalidate while mutating; re-validated only on success.
    carry.valid = false;
    let ChooseBuffers {
        assign,
        pos_of,
        fixed_in_e,
    } = choose;
    assign.clear();
    assign.resize(n, m - 1);
    pos_of.clear();
    pos_of.resize(tasks, usize::MAX);
    for (pos, &t) in seq.iter().enumerate() {
        pos_of[t.index()] = pos;
    }

    // The paper fixes the last task to the lowest-power design point
    // outright. Taken literally that makes deadlines between CT(ws) and
    // CT(ws) + D(n, m−1) − D(n, ws) spuriously infeasible, so we pin the
    // last task to the *leanest column that keeps the all-`ws` fallback
    // feasible* — identical to the paper's rule whenever the deadline has
    // any slack (see DESIGN.md §4).
    let others_at_ws: f64 = seq[..n - 1].iter().map(|&t| ctx.d(t, ws)).sum();
    let mut last_col = m - 1;
    while last_col > ws && others_at_ws + ctx.d(seq[n - 1], last_col) > d + TIME_EPS {
        last_col -= 1;
    }
    assign[n - 1] = last_col;
    let mut tsum = ctx.d(seq[n - 1], last_col);

    if *carry_disabled {
        // Carry-disabled baseline (bench-only): fresh O(n) row preparation
        // per position, no cross-window reuse — the pre-carry kernel.
        fixed_in_e.clear();
        fixed_in_e.resize(tasks, false);
        fixed_in_e[seq[n - 1].index()] = true;
        for i in (0..n.saturating_sub(1)).rev() {
            sweep_prof.rows_full += 1;
            let row = suitability_row(ctx, seq, pos_of, assign, fixed_in_e, tsum, i, ws, scratch);
            let mut best: Option<(usize, f64)> = None;
            for &(j, fb) in row {
                let b = fb.total(ctx.mask);
                // Strict '<' keeps the first (leanest) column on ties,
                // matching the paper's scan order m → ws.
                if best.is_none_or(|(_, bb)| b < bb) {
                    best = Some((j, b));
                }
            }
            let (j, b) = best.expect("window contains at least one column");
            if !b.is_finite() {
                return Err(SchedulerError::WindowSearchFailed { window_start: ws });
            }
            assign[i] = j;
            fixed_in_e[seq[i].index()] = true;
            tsum += ctx.d(seq[i], j);
        }
        return Ok(());
    }

    if n < 2 {
        // Nothing to sweep; no carry to record either.
        return Ok(());
    }

    carry.next.clear();
    carry.next.resize(n, RowCarry::default());
    // `clean` = the suffix state (committed columns deeper than the current
    // row, plus the pinned last column) is identical to window ws+1's.
    let mut clean = carried && last_col == carry.last_col;

    let first = n - 2;
    scratch.begin_sweep(ctx, seq, ws);
    let mut bases = RowBases::fresh(ctx, seq, assign, first);
    let mut rising0 = 0i32;
    for pos in 1..n {
        if pos != first && pos != first + 1 {
            rising0 += (ctx.i(seq[pos - 1], assign[pos - 1]) < ctx.i(seq[pos], assign[pos])) as i32;
        }
    }
    let mut col_ip1 = assign[first + 1];

    for i in (0..=first).rev() {
        scratch.begin_row_carried(ctx, seq, i, bases, rising0, col_ip1);
        let prev = if carried {
            carry.rows[i]
        } else {
            RowCarry::default()
        };
        // The one suitability computation both arms below share — any
        // change here changes fast and full rows together, which the
        // carry's bit-identity contract depends on.
        let score = |scratch: &mut DpfScratch, j: usize| {
            let ttemp = tsum + ctx.d(seq[i], j);
            let sr = (d - ttemp) / d;
            let cr = ctx
                .stats
                .current_ratio(batsched_battery::units::MilliAmps::new(ctx.i(seq[i], j)));
            let (enr, cif, dpf) = scratch.sweep_candidate(ctx, seq, pos_of, j);
            FactorBreakdown {
                sr,
                cr,
                enr,
                cif,
                dpf,
            }
            .total(ctx.mask)
        };
        let fast = clean && prev.repair_free && bases.rest_te + ctx.d(seq[i], ws) <= d + TIME_EPS;
        if fast {
            sweep_prof.rows_carried += 1;
        } else {
            sweep_prof.rows_full += 1;
        }
        let (j, b, repair_free) = if fast {
            // Every candidate the previous window scored reproduces the
            // same bits here; only the window's new fastest column can
            // change the winner, and only by strictly beating it (the
            // descending scan keeps the leanest column on ties).
            let b_new = score(scratch, ws);
            debug_assert!(!scratch.row_repaired, "fast rows never repair");
            if b_new < prev.best_b {
                (ws, b_new, true)
            } else {
                (prev.col, prev.best_b, true)
            }
        } else {
            let mut best: Option<(usize, f64)> = None;
            // Candidates ascending so the repair journal extends
            // monotonically; `<=` keeps the leanest (largest) column on
            // ties, matching the paper's descending scan.
            for j in ws..m {
                let b = score(scratch, j);
                if best.is_none_or(|(_, bb)| b <= bb) {
                    best = Some((j, b));
                }
            }
            let (j, b) = best.expect("window contains at least one column");
            // A row is repair-free when no candidate stopped at a repaired
            // state — position 0 rows always qualify (no free tasks exist,
            // so even infeasible verdicts carry to the next window).
            (j, b, !scratch.row_repaired || i == 0)
        };
        if !b.is_finite() {
            return Err(SchedulerError::WindowSearchFailed { window_start: ws });
        }
        clean = clean && j == prev.col;
        carry.next[i] = RowCarry {
            col: j,
            best_b: b,
            repair_free,
        };
        assign[i] = j;
        tsum += ctx.d(seq[i], j);
        if i > 0 {
            // Advance the carried chain to row i−1: the committed pair
            // (i, i+1) enters the journalled rising count, the free pair
            // (i−2, i−1) leaves (it becomes tagged-adjacent), the journal
            // prefix below the new tagged task's energy rank is kept, and
            // the base sums move through the shared RowBases chain.
            rising0 += (ctx.i(seq[i], assign[i]) < ctx.i(seq[i + 1], assign[i + 1])) as i32;
            if i >= 2 {
                rising0 -=
                    (ctx.i(seq[i - 2], assign[i - 2]) < ctx.i(seq[i - 1], assign[i - 1])) as i32;
            }
            bases.carry_down(ctx, seq, i, j, assign[i - 1]);
            scratch.advance_row(ctx, seq, i);
            col_ip1 = assign[i];
        }
    }

    carry.eval_id = ctx.eval.id();
    carry.ws = ws;
    carry.deadline = d;
    carry.mask = ctx.mask;
    carry.last_col = last_col;
    if !carried {
        carry.seq.clear();
        carry.seq.extend_from_slice(seq);
    }
    std::mem::swap(&mut carry.rows, &mut carry.next);
    carry.valid = true;
    Ok(())
}

/// Allocating convenience over [`choose_design_points_into`] for tests and
/// diagnostics.
#[cfg(test)]
pub(crate) fn choose_design_points(
    ctx: &SearchContext<'_>,
    seq: &[TaskId],
    ws: usize,
) -> Result<Vec<usize>, SchedulerError> {
    let mut buffers = EvalBuffers::new();
    choose_design_points_into(ctx, seq, ws, &mut buffers)?;
    Ok(buffers.choose.assign)
}

/// The retained naive `CalculateDPF` of a *sweep* row: same clone-and-
/// rescan structure as [`calculate_dpf_reference_with`], but the makespan
/// and energy accumulate in the sweep kernel's run arithmetic — a
/// run-boundary sum plus the current task's in-run cumulative sum,
/// `te = base + (r_sum + cum)` re-evaluated after every single promotion.
/// In a sweep every free task starts at column `m−1`, so the repair loop
/// has run structure (the first free task is promoted until it fixes at
/// the floor, then the next starts) and this arithmetic is exactly the
/// per-step walk of the kernel's binary-searched chains: bit-identical by
/// construction.
#[allow(clippy::too_many_arguments)] // mirrors the paper's CalculateDPF state
fn calculate_dpf_reference_sweep(
    ctx: &SearchContext<'_>,
    seq: &[TaskId],
    pos_of: &[usize],
    stemp_in: &[usize],
    fixed_in_e: &[bool],
    i: usize,
    ws: usize,
    bases: RowBases,
) -> (f64, f64, f64) {
    let m = ctx.m;
    let d = ctx.deadline;
    let mut stemp = stemp_in.to_vec();
    let mut etemp = fixed_in_e.to_vec();
    etemp[seq[i].index()] = true; // the tagged task is fixed in E

    let base_te = bases.rest_te + ctx.d(seq[i], stemp[i]);
    let base_energy = bases.rest_energy + ctx.e(seq[i], stemp[i]);
    let mut r_sum = 0.0; // completed-run boundary chain
    let mut re_sum = 0.0;
    let mut cum = 0.0; // current task's in-run chain
    let mut cum_e = 0.0;
    let mut te = base_te + (r_sum + cum);

    let mut feasible = true;
    while te > d + TIME_EPS {
        // First free task in ascending-energy order.
        let q = ctx.energy_order.iter().copied().find(|t| !etemp[t.index()]);
        let Some(q) = q else {
            feasible = false;
            break;
        };
        let r = pos_of[q.index()];
        let c = stemp[r];
        debug_assert!(c > ws, "free tasks never sit below the window start");
        cum += ctx.d(seq[r], c - 1) - ctx.d(seq[r], c);
        cum_e += ctx.e(seq[r], c - 1) - ctx.e(seq[r], c);
        stemp[r] = c - 1;
        if c - 1 == ws {
            // Run complete: fold it into the boundary chain, exactly the
            // bits the kernel's `r_sum[r+1] = r_sum[r] + cum[full]` stores.
            etemp[q.index()] = true;
            r_sum += cum;
            re_sum += cum_e;
            cum = 0.0;
            cum_e = 0.0;
        }
        te = base_te + (r_sum + cum);
    }
    let energy = base_energy + (re_sum + cum_e);

    let (cif, _scan_enr) = calculate_factors(ctx, seq, &stemp);
    let enr = ctx.stats.energy_ratio(Energy::new(energy));
    if !feasible {
        return (enr, cif, f64::INFINITY);
    }
    let dpf = if i == 0 {
        (d - te) / d
    } else {
        let width_minus1 = m - 1 - ws;
        if width_minus1 == 0 {
            0.0
        } else {
            let factor = 1.0 / width_minus1 as f64;
            let mut dpf = 0.0;
            for w in 0..width_minus1 {
                let col = ws + w;
                let coeff = (width_minus1 - w) as f64;
                let count = (0..i).filter(|&y| stemp[y] == col).count();
                dpf += coeff * factor * count as f64 / i as f64;
            }
            dpf
        }
    };
    (enr, cif, dpf)
}

/// The retained naive `ChooseDesignPoints` — the pre-incremental sweep
/// (per-candidate clones and scans via [`calculate_dpf_reference_sweep`]),
/// kept as the bit-identical equivalence reference and the bench baseline
/// for `cdp_speedup`. The row base sums follow the kernel's carried chain
/// (fresh summation at the first row, then the shared
/// [`RowBases::carry_down`] delta per committed row) so the two sweeps
/// share every floating-point accumulation.
pub(crate) fn choose_design_points_reference(
    ctx: &SearchContext<'_>,
    seq: &[TaskId],
    ws: usize,
) -> Result<Vec<usize>, SchedulerError> {
    let n = seq.len();
    let m = ctx.m;
    let mut assign = vec![m - 1; n];
    let mut pos_of = vec![usize::MAX; ctx.g.task_count()];
    for (pos, &t) in seq.iter().enumerate() {
        pos_of[t.index()] = pos;
    }
    let mut fixed_in_e = vec![false; ctx.g.task_count()];

    let others_at_ws: f64 = seq[..n - 1].iter().map(|&t| ctx.d(t, ws)).sum();
    let mut last_col = m - 1;
    while last_col > ws && others_at_ws + ctx.d(seq[n - 1], last_col) > ctx.deadline + TIME_EPS {
        last_col -= 1;
    }
    fixed_in_e[seq[n - 1].index()] = true;
    assign[n - 1] = last_col;
    let mut tsum = ctx.d(seq[n - 1], last_col);

    let mut bases = if n >= 2 {
        RowBases::fresh(ctx, seq, &assign, n - 2)
    } else {
        RowBases::default()
    };
    for i in (0..n.saturating_sub(1)).rev() {
        let mut best: Option<(usize, f64)> = None;
        for j in (ws..m).rev() {
            let prev = assign[i];
            assign[i] = j;
            let ttemp = tsum + ctx.d(seq[i], j);
            let sr = (ctx.deadline - ttemp) / ctx.deadline;
            let cr = ctx
                .stats
                .current_ratio(batsched_battery::units::MilliAmps::new(ctx.i(seq[i], j)));
            let (enr, cif, dpf) = calculate_dpf_reference_sweep(
                ctx,
                seq,
                &pos_of,
                &assign,
                &fixed_in_e,
                i,
                ws,
                bases,
            );
            assign[i] = prev;
            let fb = FactorBreakdown {
                sr,
                cr,
                enr,
                cif,
                dpf,
            };
            let b = fb.total(ctx.mask);
            if best.is_none_or(|(_, bb)| b < bb) {
                best = Some((j, b));
            }
        }
        let (j, b) = best.expect("window contains at least one column");
        if !b.is_finite() {
            return Err(SchedulerError::WindowSearchFailed { window_start: ws });
        }
        assign[i] = j;
        fixed_in_e[seq[i].index()] = true;
        tsum += ctx.d(seq[i], j);
        if i > 0 {
            bases.carry_down(ctx, seq, i, j, assign[i - 1]);
        }
    }
    Ok(assign)
}

/// Outcome of one window evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowRecord {
    /// 0-based fastest column of the window (`PointId` of the window start);
    /// the paper labels this window `ws+1 : m`.
    pub window_start: PointId,
    /// Battery cost σ of the window's assignment under the run's sequence.
    pub cost: MilliAmpMinutes,
    /// Makespan of that assignment.
    pub makespan: Minutes,
    /// Task-indexed assignment chosen within this window.
    pub assignment: Vec<PointId>,
}

impl WindowRecord {
    /// The paper's "Win k:m" label.
    pub fn label(&self, m: usize) -> String {
        format!("{}:{}", self.window_start.index() + 1, m)
    }
}

/// Reusable per-run evaluation buffers: the entry-id sequence buffer, the
/// σ-engine scratch, and the window-search working state (the incremental
/// DPF kernel's journal + prefix sums, the `ChooseDesignPoints` assignment
/// buffers, and the cross-window [`WindowCarry`] records). One allocation
/// set per scheduling run — and zero steady-state allocations when reused
/// across runs via [`SolverWorkspace`](crate::algorithm::SolverWorkspace).
#[derive(Debug, Clone, Default)]
pub struct EvalBuffers {
    pub(crate) entries: Vec<u32>,
    pub(crate) sigma: SigmaScratch,
    pub(crate) dpf: DpfScratch,
    pub(crate) choose: ChooseBuffers,
    pub(crate) carry: WindowCarry,
    pub(crate) carry_disabled: bool,
    pub(crate) sweep_prof: SweepProf,
}

/// Window-sweep phase counters held by [`EvalBuffers`]; the
/// journal/σ-cache counters live in their own scratch structures and are
/// composed by [`EvalBuffers::prof`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SweepProf {
    pub(crate) windows: u64,
    pub(crate) carry_hits: u64,
    pub(crate) carry_misses: u64,
    pub(crate) rows_full: u64,
    pub(crate) rows_carried: u64,
}

impl EvalBuffers {
    /// Creates empty buffers (they grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the cumulative solver-phase counters accumulated by
    /// every search that ran through these buffers (see
    /// [`crate::prof::Prof`] for what each counter means and the
    /// `parallel`-feature caveat).
    pub fn prof(&self) -> crate::prof::Prof {
        let (sigma_evals, sigma_reused, sigma_fresh) = self.sigma.cache_stats();
        crate::prof::Prof {
            windows: self.sweep_prof.windows,
            carry_hits: self.sweep_prof.carry_hits,
            carry_misses: self.sweep_prof.carry_misses,
            rows_full: self.sweep_prof.rows_full,
            rows_carried: self.sweep_prof.rows_carried,
            journal_promotions: self.dpf.prof_promotions,
            journal_rollbacks: self.dpf.prof_rollbacks,
            sigma_evals,
            sigma_reused,
            sigma_fresh,
        }
    }

    /// Disables the cross-row / cross-window carry, forcing the fresh
    /// per-row preparation path. Bench-only: this is how `repro_bench_json`
    /// reconstructs the pre-carry baseline for `speedup.row_carry`. The
    /// disabled path accumulates its row sums per row instead of carrying
    /// them, so its results can differ from the carried path in final-bit
    /// float association (both are internally consistent).
    #[doc(hidden)]
    pub fn disable_sweep_carry(&mut self) {
        self.carry_disabled = true;
        self.carry.valid = false;
    }
}

/// Evaluates one window: `ChooseDesignPoints` then the σ of the chosen
/// positional assignment.
fn evaluate_one_window(
    ctx: &SearchContext<'_>,
    seq: &[TaskId],
    ws: usize,
    scratch: &mut EvalBuffers,
) -> Result<WindowRecord, SchedulerError> {
    scratch.sweep_prof.windows += 1;
    choose_design_points_into(ctx, seq, ws, scratch)?;
    let (cost, makespan) = positional_cost_split(
        ctx,
        seq,
        &scratch.choose.assign,
        &mut scratch.entries,
        &mut scratch.sigma,
    );
    let mut assignment = vec![PointId(0); ctx.g.task_count()];
    for (pos, &t) in seq.iter().enumerate() {
        assignment[t.index()] = PointId(scratch.choose.assign[pos]);
    }
    Ok(WindowRecord {
        window_start: PointId(ws),
        cost,
        makespan,
        assignment,
    })
}

/// `EvaluateWindows` (Fig. 1): finds the feasible starting window, evaluates
/// every window from there down to the full matrix, and returns all records
/// plus the index of the cheapest.
///
/// With the `parallel` feature the windows are evaluated concurrently
/// (they are independent searches); record order and the cheapest-window
/// tie-break are identical to the sequential path.
///
/// # Errors
///
/// * [`SchedulerError::DeadlineInfeasible`] when even column 0 misses `d`.
/// * Propagates [`SchedulerError::WindowSearchFailed`] (defensive).
pub(crate) fn evaluate_windows(
    ctx: &SearchContext<'_>,
    seq: &[TaskId],
    buffers: &mut EvalBuffers,
) -> Result<(Vec<WindowRecord>, usize), SchedulerError> {
    let m = ctx.m;
    let d = ctx.deadline;
    if d < ctx.column_time(0) - TIME_EPS {
        return Err(SchedulerError::DeadlineInfeasible {
            fastest: Minutes::new(ctx.column_time(0)),
            deadline: Minutes::new(d),
        });
    }
    let mut ws_start = m.saturating_sub(2);
    while d < ctx.column_time(ws_start) - TIME_EPS {
        debug_assert!(ws_start > 0, "column 0 checked feasible above");
        ws_start -= 1;
    }

    #[cfg(feature = "parallel")]
    let records: Vec<WindowRecord> = {
        // The parallel path keeps one buffer set per worker thread instead;
        // the caller's carry-disable switch (bench baseline) must still
        // reach them.
        let carry_disabled = buffers.carry_disabled;
        use rayon::prelude::*;
        use std::cell::RefCell;
        // One buffer set per worker thread, reused across windows and
        // across calls — keeps the one-allocation-per-run property on the
        // parallel path too.
        thread_local! {
            static BUFFERS: RefCell<EvalBuffers> = RefCell::new(EvalBuffers::new());
        }
        let results: Vec<Result<WindowRecord, SchedulerError>> = (0..ws_start + 1)
            .into_par_iter()
            .map(|k| {
                let ws = ws_start - k; // preserve the sequential order
                BUFFERS.with(|b| {
                    let b = &mut *b.borrow_mut();
                    if b.carry_disabled != carry_disabled {
                        b.carry_disabled = carry_disabled;
                        b.carry.valid = false;
                    }
                    evaluate_one_window(ctx, seq, ws, b)
                })
            })
            .collect();
        results.into_iter().collect::<Result<Vec<_>, _>>()?
    };

    #[cfg(not(feature = "parallel"))]
    let records: Vec<WindowRecord> = {
        let mut records = Vec::with_capacity(ws_start + 1);
        for ws in (0..=ws_start).rev() {
            records.push(evaluate_one_window(ctx, seq, ws, buffers)?);
        }
        records
    };

    let mut best: Option<(usize, f64)> = None;
    for (idx, r) in records.iter().enumerate() {
        if best.is_none_or(|(_, c)| r.cost.value() < c) {
            best = Some((idx, r.cost.value()));
        }
    }
    let (best_idx, _) = best.expect("at least one window is evaluated");
    Ok((records, best_idx))
}

/// σ and makespan of a positional assignment, through the evaluation
/// engine (no allocation, no `exp()` calls). Takes the entry buffer and
/// σ scratch as split borrows so callers whose assignment lives in the
/// same [`EvalBuffers`] (the window sweep) can share one buffer set —
/// the single map-to-entries-and-evaluate body for positional columns.
pub(crate) fn positional_cost_split(
    ctx: &SearchContext<'_>,
    seq: &[TaskId],
    assign_pos: &[usize],
    entries: &mut Vec<u32>,
    sigma: &mut SigmaScratch,
) -> (MilliAmpMinutes, Minutes) {
    entries.clear();
    entries.extend(
        seq.iter()
            .zip(assign_pos)
            .map(|(&t, &col)| ctx.entry(t, col)),
    );
    ctx.eval.sigma_seq(entries, sigma)
}

/// [`positional_cost_split`] over one [`EvalBuffers`].
pub(crate) fn positional_cost(
    ctx: &SearchContext<'_>,
    seq: &[TaskId],
    assign_pos: &[usize],
    scratch: &mut EvalBuffers,
) -> (MilliAmpMinutes, Minutes) {
    positional_cost_split(
        ctx,
        seq,
        assign_pos,
        &mut scratch.entries,
        &mut scratch.sigma,
    )
}

/// The naive σ of a positional assignment: builds a fresh `LoadProfile`
/// and evaluates [`RvModel::sigma`] directly. Reference implementation the
/// engine is property-tested against; also usable with any
/// [`batsched_battery::model::BatteryModel`].
pub fn positional_cost_naive<M: batsched_battery::model::BatteryModel + ?Sized>(
    g: &TaskGraph,
    model: &M,
    seq: &[TaskId],
    assign_pos: &[usize],
) -> (MilliAmpMinutes, Minutes) {
    let mut p = batsched_battery::profile::LoadProfile::new();
    for (pos, &t) in seq.iter().enumerate() {
        let pt = g.point(t, PointId(assign_pos[pos]));
        p.push(pt.duration, pt.current)
            .expect("validated design points are positive-duration");
    }
    let end = p.end();
    (model.apparent_charge(&p, end), end)
}

/// Diagnostic entry point: runs `EvaluateWindows` for an explicit sequence.
/// Exposed for the reproduction binaries and integration tests — the
/// iterative driver in [`crate::algorithm`] is the normal interface.
#[doc(hidden)]
pub fn diag_evaluate_windows(
    g: &TaskGraph,
    config: &SchedulerConfig,
    deadline: Minutes,
    model: &RvModel,
    seq: &[TaskId],
) -> Result<(Vec<WindowRecord>, usize), SchedulerError> {
    let ctx = SearchContext::new(g, config, deadline, model.clone());
    evaluate_windows(&ctx, seq, &mut EvalBuffers::new())
}

/// Diagnostic entry point: one `CalculateDPF` call on an explicit state.
///
/// `stemp` is the positional assignment snapshot (0-based columns),
/// `fixed_tasks` the task ids already fixed in the energy vector, `i` the
/// tagged position and `ws` the 0-based window start. Returns
/// `(enr, cif, dpf)`. Used by the Figure 4 reproduction binary.
#[doc(hidden)]
#[allow(clippy::too_many_arguments)] // mirrors the paper's CalculateDPF state
pub fn diag_calculate_dpf(
    g: &TaskGraph,
    config: &SchedulerConfig,
    deadline: Minutes,
    seq: &[TaskId],
    stemp: &[usize],
    fixed_tasks: &[TaskId],
    i: usize,
    ws: usize,
) -> (f64, f64, f64) {
    // The factor computation never evaluates σ, so an unusable battery
    // configuration falls back to the paper's model instead of erroring —
    // this diagnostic predates the evaluation engine and must keep working
    // for model-free factor inspection.
    let model = config.battery_model().unwrap_or_default();
    let ctx = SearchContext::new(g, config, deadline, model);
    let mut pos_of = vec![usize::MAX; g.task_count()];
    for (pos, &t) in seq.iter().enumerate() {
        pos_of[t.index()] = pos;
    }
    let mut fixed = vec![false; g.task_count()];
    for &t in fixed_tasks {
        fixed[t.index()] = true;
    }
    calculate_dpf(&ctx, seq, &pos_of, stemp, &fixed, i, ws)
}

/// A prepared window-search context with reusable buffers — the public
/// (doc-hidden) handle the equivalence proptests and `repro_bench_json`
/// use to drive `ChooseDesignPoints` and `CalculateDPF` in isolation,
/// both through the incremental [`DpfScratch`] kernel and through the
/// retained naive reference.
#[doc(hidden)]
pub struct DiagSearch<'g> {
    ctx: SearchContext<'g>,
    buffers: EvalBuffers,
}

impl<'g> DiagSearch<'g> {
    /// Builds the search context for `g` under `config` and `deadline`.
    ///
    /// # Errors
    ///
    /// [`SchedulerError::InvalidConfig`] when the configuration is unusable.
    pub fn new(
        g: &'g TaskGraph,
        config: &SchedulerConfig,
        deadline: Minutes,
    ) -> Result<Self, SchedulerError> {
        let model = config.battery_model()?;
        Ok(Self {
            ctx: SearchContext::new(g, config, deadline, model),
            buffers: EvalBuffers::new(),
        })
    }

    /// `ChooseDesignPoints` through the incremental kernel (positional
    /// columns). Reuses the internal buffers across calls, so repeated
    /// invocations are allocation-free — the configuration benched as
    /// `cdp_ns`.
    ///
    /// # Errors
    ///
    /// Propagates [`SchedulerError::WindowSearchFailed`].
    pub fn choose(&mut self, seq: &[TaskId], ws: usize) -> Result<&[usize], SchedulerError> {
        choose_design_points_into(&self.ctx, seq, ws, &mut self.buffers)?;
        Ok(&self.buffers.choose.assign)
    }

    /// `ChooseDesignPoints` through the retained naive reference
    /// (per-candidate clones and scans) — the bench baseline for
    /// `cdp_speedup` and the bit-identical equivalence anchor.
    ///
    /// # Errors
    ///
    /// Propagates [`SchedulerError::WindowSearchFailed`].
    pub fn choose_reference(
        &mut self,
        seq: &[TaskId],
        ws: usize,
    ) -> Result<Vec<usize>, SchedulerError> {
        choose_design_points_reference(&self.ctx, seq, ws)
    }

    /// One `CalculateDPF` call through the incremental kernel on an
    /// explicit snapshot (see [`diag_calculate_dpf`] for the argument
    /// conventions).
    pub fn dpf(
        &mut self,
        seq: &[TaskId],
        stemp: &[usize],
        fixed_tasks: &[TaskId],
        i: usize,
        ws: usize,
    ) -> (f64, f64, f64) {
        let (pos_of, fixed) = self.diag_state(seq, fixed_tasks);
        calculate_dpf(&self.ctx, seq, &pos_of, stemp, &fixed, i, ws)
    }

    /// One `CalculateDPF` call through the retained naive reference.
    pub fn dpf_reference(
        &mut self,
        seq: &[TaskId],
        stemp: &[usize],
        fixed_tasks: &[TaskId],
        i: usize,
        ws: usize,
    ) -> (f64, f64, f64) {
        let (pos_of, fixed) = self.diag_state(seq, fixed_tasks);
        calculate_dpf_reference(&self.ctx, seq, &pos_of, stemp, &fixed, i, ws)
    }

    /// σ and makespan of a positional assignment through the evaluation
    /// engine (shared buffers).
    pub fn cost(&mut self, seq: &[TaskId], assign_pos: &[usize]) -> (MilliAmpMinutes, Minutes) {
        positional_cost(&self.ctx, seq, assign_pos, &mut self.buffers)
    }

    /// One full `EvaluateWindows` sweep through the carried kernel,
    /// reusing the internal buffers across calls — the configuration
    /// benched as `sweep_scaling`.
    ///
    /// # Errors
    ///
    /// The errors of `evaluate_windows` (infeasible deadline, defensive
    /// window failure).
    pub fn windows(
        &mut self,
        seq: &[TaskId],
    ) -> Result<(Vec<WindowRecord>, usize), SchedulerError> {
        evaluate_windows(&self.ctx, seq, &mut self.buffers)
    }

    /// Disables the cross-row / cross-window carry in this handle's
    /// buffers (the bench baseline; see [`EvalBuffers::disable_sweep_carry`]).
    pub fn disable_sweep_carry(&mut self) {
        self.buffers.disable_sweep_carry();
    }

    /// The feasible window starts for `seq` under the context's deadline:
    /// every `ws` with `CT(ws) <= d`, widest feasible first (the sweep
    /// order of `EvaluateWindows`).
    pub fn feasible_windows(&self) -> Vec<usize> {
        (0..self.ctx.m)
            .rev()
            .filter(|&ws| self.ctx.column_time(ws) <= self.ctx.deadline + TIME_EPS)
            .collect()
    }

    fn diag_state(&self, seq: &[TaskId], fixed_tasks: &[TaskId]) -> (Vec<usize>, Vec<bool>) {
        let mut pos_of = vec![usize::MAX; self.ctx.g.task_count()];
        for (pos, &t) in seq.iter().enumerate() {
            pos_of[t.index()] = pos;
        }
        let mut fixed = vec![false; self.ctx.g.task_count()];
        for &t in fixed_tasks {
            fixed[t.index()] = true;
        }
        (pos_of, fixed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerConfig;
    use batsched_battery::units::MilliAmps;
    use batsched_taskgraph::DesignPoint;

    fn dp(current: f64, duration: f64) -> DesignPoint {
        DesignPoint::new(MilliAmps::new(current), Minutes::new(duration))
    }

    /// Five independent tasks, four design points — the Figure 4 setting.
    /// Durations are crafted so that, with T5 and T4 fixed and T3 tagged at
    /// DP2, meeting the deadline needs T1 promoted exactly twice
    /// (DP4 → DP3 → DP2), reproducing panels (a)–(c) of the figure.
    fn figure4_graph() -> TaskGraph {
        let mut b = TaskGraph::builder();
        // Average energies must order E = [T3, T4, T5, T1, T2] (the figure's
        // E = [3,4,5,1,2]), and T1 must be the first *free* task (T3/T4/T5
        // are fixed). Energies rise with base current here.
        let rows: [(&str, f64); 5] = [
            ("T1", 400.0),
            ("T2", 500.0),
            ("T3", 100.0),
            ("T4", 200.0),
            ("T5", 300.0),
        ];
        for (name, i1) in rows {
            // DP1..DP4: durations 2/4/6/8 min, currents fall geometrically.
            b.task(
                name,
                vec![
                    dp(i1, 2.0),
                    dp(i1 * 0.5, 4.0),
                    dp(i1 * 0.25, 6.0),
                    dp(i1 * 0.12, 8.0),
                ],
            );
        }
        b.build().unwrap()
    }

    fn ctx_for<'g>(g: &'g TaskGraph, deadline: f64, config: &SchedulerConfig) -> SearchContext<'g> {
        SearchContext::new(
            g,
            config,
            Minutes::new(deadline),
            config.battery_model().unwrap(),
        )
    }

    #[test]
    fn energy_vector_matches_figure4() {
        let g = figure4_graph();
        let cfg = SchedulerConfig::default();
        let ctx = ctx_for(&g, 100.0, &cfg);
        let names: Vec<&str> = ctx.energy_order.iter().map(|&t| g.name(t)).collect();
        assert_eq!(names, vec!["T3", "T4", "T5", "T1", "T2"]);
    }

    #[test]
    fn figure4_dpf_is_one_third() {
        // Figure 4: m = 4, full window (ws = 0). Sequence positions are
        // T1..T5 in order; T5 fixed at DP4, T4 fixed at DP1, T3 tagged at
        // DP2 (position 2 → i = 2). Free: T1, T2 at DP4. Deadline forces
        // exactly two promotions of T1 (the first free task in E), leaving
        // T1 at DP2 and T2 at DP4 — the paper computes DPF = 1/3.
        let g = figure4_graph();
        let cfg = SchedulerConfig::default();
        // Fixed suffix: T4@DP1 (2 min), T5@DP4 (8 min). Tagged T3@DP2
        // (4 min). Free T1, T2 at DP4 (8 min each): total 30. Deadline 26
        // requires saving 4 minutes: T1 → DP3 (−2) → DP2 (−2). ✓
        let ctx = ctx_for(&g, 26.0, &cfg);
        let seq: Vec<TaskId> = (0..5).map(TaskId).collect();
        let pos_of: Vec<usize> = (0..5).collect();
        // Positional assignment snapshot: T4 (pos 3) at DP1 = col 0, T5
        // (pos 4) at DP4 = col 3, tagged T3 (pos 2) at DP2 = col 1.
        let stemp = vec![3, 3, 1, 0, 3];
        let fixed = {
            let mut f = vec![false; 5];
            f[3] = true; // T4
            f[4] = true; // T5
            f
        };
        let (_enr, _cif, dpf) = calculate_dpf(&ctx, &seq, &pos_of, &stemp, &fixed, 2, 0);
        assert!((dpf - 1.0 / 3.0).abs() < 1e-12, "got DPF = {dpf}");
    }

    #[test]
    fn dpf_is_infinite_when_no_repair_fits() {
        let g = figure4_graph();
        let cfg = SchedulerConfig::default();
        // Even all-DP1 takes 10 minutes; a 9-minute deadline cannot be met.
        let ctx = ctx_for(&g, 9.0, &cfg);
        let seq: Vec<TaskId> = (0..5).map(TaskId).collect();
        let pos_of: Vec<usize> = (0..5).collect();
        let stemp = vec![3, 3, 1, 0, 3];
        let fixed = {
            let mut f = vec![false; 5];
            f[3] = true;
            f[4] = true;
            f
        };
        let (_, _, dpf) = calculate_dpf(&ctx, &seq, &pos_of, &stemp, &fixed, 2, 0);
        assert!(dpf.is_infinite());
    }

    #[test]
    fn dpf_for_first_position_is_slack_ratio() {
        let g = figure4_graph();
        let cfg = SchedulerConfig::default();
        let ctx = ctx_for(&g, 40.0, &cfg);
        let seq: Vec<TaskId> = (0..5).map(TaskId).collect();
        let pos_of: Vec<usize> = (0..5).collect();
        // Everything fixed except position 0, tagged at col 2 (6 min).
        let stemp = vec![2, 3, 3, 3, 3];
        let fixed = vec![false, true, true, true, true];
        let (_, _, dpf) = calculate_dpf(&ctx, &seq, &pos_of, &stemp, &fixed, 0, 0);
        let te = 6.0 + 8.0 * 4.0; // 38 min, under the 40-minute deadline
        assert!((dpf - (40.0 - te) / 40.0).abs() < 1e-12);
    }

    #[test]
    fn repair_promotes_lowest_energy_task_first_and_fixes_at_window_start() {
        let g = figure4_graph();
        let cfg = SchedulerConfig::default();
        // Deadline 18: free T1, T2 at DP4, nothing else fixed beyond the
        // tagged last... construct: suffix fixed = T3,T4,T5 at DP1 (2 min
        // each) = 6; tagged position 2 is T3 — instead tag position 2 and
        // free T1, T2: total = 8+8+{T3@DP1}2+2+2 = 22 > 18. Repair must
        // promote T1 (first free in E among T1, T2): DP4→DP3 (−2) → 20,
        // DP3→DP2 (−2) → 18 ≤ d. T1 ends at DP2, T2 untouched.
        let ctx = ctx_for(&g, 18.0, &cfg);
        let seq: Vec<TaskId> = (0..5).map(TaskId).collect();
        let pos_of: Vec<usize> = (0..5).collect();
        let stemp = vec![3, 3, 0, 0, 0];
        let fixed = vec![false, false, false, true, true];
        // Tagged i = 2 (T3@DP1).
        let (_enr, _cif, dpf) = calculate_dpf(&ctx, &seq, &pos_of, &stemp, &fixed, 2, 0);
        assert!(dpf.is_finite());
        // The repaired distribution: T1@DP2 (col 1) → coefficient 2/3, one
        // of two free tasks there: DPF = (2/3)·(1/2) = 1/3.
        assert!((dpf - 1.0 / 3.0).abs() < 1e-12, "dpf = {dpf}");
    }

    #[test]
    fn choose_design_points_meets_deadline_and_fixes_last_task_lowest_power() {
        let g = figure4_graph();
        let cfg = SchedulerConfig::default();
        for deadline in [12.0, 16.0, 20.0, 26.0, 32.0, 40.0] {
            let ctx = ctx_for(&g, deadline, &cfg);
            let seq: Vec<TaskId> = (0..5).map(TaskId).collect();
            for ws in 0..=2usize {
                if ctx.column_time(ws) > deadline {
                    continue;
                }
                let assign = choose_design_points(&ctx, &seq, ws).unwrap();
                let total: f64 = seq
                    .iter()
                    .enumerate()
                    .map(|(p, &t)| ctx.d(t, assign[p]))
                    .sum();
                assert!(
                    total <= deadline + TIME_EPS,
                    "d={deadline} ws={ws} total={total}"
                );
                // The last task is pinned to the leanest column that keeps
                // the all-`ws` fallback feasible (= DP4 once slack allows).
                let others: f64 = (0..4).map(|p| ctx.d(TaskId(p), ws)).sum();
                let expect_last = (ws..4)
                    .rev()
                    .find(|&c| others + ctx.d(TaskId(4), c) <= deadline + TIME_EPS)
                    .unwrap();
                assert_eq!(assign[4], expect_last, "d={deadline} ws={ws}");
                if deadline >= 26.0 && ws == 0 {
                    assert_eq!(assign[4], 3, "loose deadlines keep the paper's rule");
                }
                assert!(assign.iter().all(|&c| c >= ws), "window respected");
            }
        }
    }

    #[test]
    fn incremental_kernel_matches_reference_on_figure4_sweep() {
        // Every (deadline, window, position) of the Figure 4 fixture: the
        // incremental kernel and the retained naive reference must agree
        // bit-for-bit on assignments and factor triples.
        let g = figure4_graph();
        let cfg = SchedulerConfig::default();
        let seq: Vec<TaskId> = (0..5).map(TaskId).collect();
        for deadline in [10.5, 12.0, 16.0, 18.0, 20.0, 26.0, 32.0, 40.0] {
            let ctx = ctx_for(&g, deadline, &cfg);
            for ws in 0..4usize {
                if ctx.column_time(ws) > deadline {
                    continue;
                }
                let fast = choose_design_points(&ctx, &seq, ws).unwrap();
                let naive = choose_design_points_reference(&ctx, &seq, ws).unwrap();
                assert_eq!(fast, naive, "d={deadline} ws={ws}");
            }
        }
    }

    #[test]
    fn calculate_dpf_matches_reference_on_explicit_states() {
        let g = figure4_graph();
        let cfg = SchedulerConfig::default();
        let seq: Vec<TaskId> = (0..5).map(TaskId).collect();
        let pos_of: Vec<usize> = (0..5).collect();
        for deadline in [9.0, 18.0, 26.0, 40.0] {
            let ctx = ctx_for(&g, deadline, &cfg);
            for (stemp, fixed, i) in [
                (
                    vec![3, 3, 1, 0, 3],
                    vec![false, false, false, true, true],
                    2,
                ),
                (
                    vec![3, 3, 0, 0, 0],
                    vec![false, false, false, true, true],
                    2,
                ),
                (vec![2, 3, 3, 3, 3], vec![false, true, true, true, true], 0),
                (
                    vec![3, 2, 1, 0, 3],
                    vec![false, false, false, false, true],
                    3,
                ),
                (
                    vec![3, 3, 3, 3, 3],
                    vec![false, false, false, false, false],
                    4,
                ),
            ] {
                for ws in 0..2usize {
                    // Free tasks must sit above the window start (the
                    // repair-loop invariant both implementations assert).
                    let legal = stemp
                        .iter()
                        .enumerate()
                        .all(|(pos, &col)| pos == i || fixed[pos] || col > ws);
                    if !legal {
                        continue;
                    }
                    let a = calculate_dpf(&ctx, &seq, &pos_of, &stemp, &fixed, i, ws);
                    let b = calculate_dpf_reference(&ctx, &seq, &pos_of, &stemp, &fixed, i, ws);
                    assert_eq!(a, b, "d={deadline} i={i} ws={ws} stemp={stemp:?}");
                }
            }
        }
    }

    #[test]
    fn suitability_row_buffer_matches_per_candidate_wrapper() {
        // The shared-journal row must equal candidate-at-a-time one-shot
        // calls (which rebuild the journal from scratch every time).
        let g = figure4_graph();
        let cfg = SchedulerConfig::default();
        let ctx = ctx_for(&g, 26.0, &cfg);
        let seq: Vec<TaskId> = (0..5).map(TaskId).collect();
        let pos_of: Vec<usize> = (0..5).collect();
        let mut assign = vec![3, 3, 3, 0, 3];
        let snapshot = assign.clone();
        let fixed = vec![false, false, false, true, true];
        let mut scratch = DpfScratch::default();
        let tsum = ctx.d(TaskId(3), 0) + ctx.d(TaskId(4), 3);
        let row: Vec<(usize, FactorBreakdown)> = suitability_row(
            &ctx,
            &seq,
            &pos_of,
            &mut assign,
            &fixed,
            tsum,
            2,
            0,
            &mut scratch,
        )
        .to_vec();
        assert_eq!(assign, snapshot, "end_row must roll the journal back");
        assert_eq!(row.len(), 4);
        for &(j, fb) in &row {
            let mut stemp = snapshot.clone();
            stemp[2] = j;
            let (enr, cif, dpf) = calculate_dpf(&ctx, &seq, &pos_of, &stemp, &fixed, 2, 0);
            assert_eq!((fb.enr, fb.cif, fb.dpf), (enr, cif, dpf), "col {j}");
        }
        // Descending candidate order, matching the paper's scan.
        assert_eq!(
            row.iter().map(|&(j, _)| j).collect::<Vec<_>>(),
            [3, 2, 1, 0]
        );
    }

    #[test]
    fn evaluate_windows_rejects_impossible_deadline() {
        let g = figure4_graph();
        let cfg = SchedulerConfig::default();
        let ctx = ctx_for(&g, 9.0, &cfg); // all-DP1 needs 10 min
        let seq: Vec<TaskId> = (0..5).map(TaskId).collect();
        let err = evaluate_windows(&ctx, &seq, &mut EvalBuffers::new()).unwrap_err();
        assert!(matches!(err, SchedulerError::DeadlineInfeasible { .. }));
    }

    #[test]
    fn evaluate_windows_skips_infeasible_narrow_windows() {
        let g = figure4_graph();
        let cfg = SchedulerConfig::default();
        // CT per column: 10, 20, 30, 40. Deadline 25 ⇒ only windows with
        // ws ∈ {0, 1} are feasible; the paper's loop starts at ws = 1.
        let ctx = ctx_for(&g, 25.0, &cfg);
        let seq: Vec<TaskId> = (0..5).map(TaskId).collect();
        let (records, best) = evaluate_windows(&ctx, &seq, &mut EvalBuffers::new()).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].window_start, PointId(1));
        assert_eq!(records[1].window_start, PointId(0));
        assert!(best < records.len());
        for r in &records {
            assert!(r.makespan.value() <= 25.0 + TIME_EPS);
        }
    }

    #[test]
    fn window_labels_match_paper_convention() {
        let r = WindowRecord {
            window_start: PointId(3),
            cost: MilliAmpMinutes::new(1.0),
            makespan: Minutes::new(1.0),
            assignment: vec![],
        };
        assert_eq!(r.label(5), "4:5");
    }

    #[test]
    fn factor_mask_zeroes_terms_but_keeps_the_veto() {
        let fb = FactorBreakdown {
            sr: 0.1,
            cr: 0.2,
            enr: 0.3,
            cif: 0.4,
            dpf: 0.5,
        };
        assert!((fb.total(FactorMask::ALL) - 1.5).abs() < 1e-12);
        assert!((fb.total(FactorMask::without(4)) - 1.0).abs() < 1e-12);
        assert!((fb.total(FactorMask::without(0)) - 1.4).abs() < 1e-12);
        let veto = FactorBreakdown {
            dpf: f64::INFINITY,
            ..fb
        };
        assert!(veto.total(FactorMask::without(4)).is_infinite());
    }

    #[test]
    fn calculate_factors_cif_counts_rises() {
        let g = figure4_graph();
        let cfg = SchedulerConfig::default();
        let ctx = ctx_for(&g, 100.0, &cfg);
        let seq: Vec<TaskId> = (0..5).map(TaskId).collect();
        // Currents at DP1 by position: 400, 500, 100, 200, 300 — rises at
        // positions 1, 3, 4 → CIF = 3/4.
        let (cif, _enr) = calculate_factors(&ctx, &seq, &[0, 0, 0, 0, 0]);
        assert!((cif - 0.75).abs() < 1e-12);
    }

    #[test]
    fn calculate_factors_enr_normalises() {
        let g = figure4_graph();
        let cfg = SchedulerConfig::default();
        let ctx = ctx_for(&g, 100.0, &cfg);
        let seq: Vec<TaskId> = (0..5).map(TaskId).collect();
        let (_cif, enr_min) = calculate_factors(&ctx, &seq, &[3, 3, 3, 3, 3]);
        let (_cif, enr_max) = calculate_factors(&ctx, &seq, &[0, 0, 0, 0, 0]);
        assert!((enr_min - 0.0).abs() < 1e-12);
        assert!((enr_max - 1.0).abs() < 1e-12);
    }
}
