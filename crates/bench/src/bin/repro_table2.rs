//! Reproduces **Table 2** of the paper: the task sequences and design-point
//! assignments produced by each iteration of the algorithm on G3 with a
//! 230-minute deadline, printed next to the published sequences.

#![forbid(unsafe_code)]

use batsched_battery::units::Minutes;
use batsched_bench::Table;
use batsched_core::{schedule, SchedulerConfig};
use batsched_taskgraph::paper::{g3, G3_EXAMPLE_DEADLINE};
use batsched_taskgraph::TaskGraph;

const PUBLISHED: [(&str, &str); 4] = [
    (
        "T1,T4,T5,T7,T3,T2,T6,T8,T10,T9,T13,T12,T11,T14,T15",
        "T1,T3,T2,T4,T5,T6,T7,T8,T10,T9,T13,T12,T11,T14,T15",
    ),
    (
        "T1,T3,T2,T4,T5,T6,T7,T8,T10,T9,T13,T12,T11,T14,T15",
        "T1,T3,T2,T4,T5,T6,T7,T8,T9,T10,T13,T11,T12,T14,T15",
    ),
    (
        "T1,T3,T2,T4,T5,T6,T7,T8,T9,T10,T13,T11,T12,T14,T15",
        "T1,T2,T4,T5,T7,T3,T6,T8,T9,T10,T13,T11,T12,T14,T15",
    ),
    (
        "T1,T2,T4,T5,T7,T3,T6,T8,T9,T10,T13,T11,T12,T14,T15",
        "T1,T2,T4,T5,T7,T3,T6,T8,T9,T10,T13,T11,T12,T14,T15",
    ),
];

fn names(g: &TaskGraph, seq: &[batsched_taskgraph::TaskId]) -> String {
    seq.iter().map(|&t| g.name(t)).collect::<Vec<_>>().join(",")
}

fn agreement(a: &str, b: &str) -> String {
    let (xa, xb): (Vec<&str>, Vec<&str>) = (a.split(',').collect(), b.split(',').collect());
    let same = xa.iter().zip(&xb).filter(|(x, y)| *x == *y).count();
    format!("{}/{}", same, xa.len())
}

fn main() {
    println!("== Table 2: task sequences of G3 per iteration (deadline 230 min) ==\n");
    let g = g3();
    let sol = schedule(
        &g,
        Minutes::new(G3_EXAMPLE_DEADLINE),
        &SchedulerConfig::paper(),
    )
    .expect("G3 at 230 min is feasible");

    let mut t = Table::new(["Iter", "Seq", "Ours", "Published", "Match"]);
    for (k, it) in sol.trace.iter().enumerate() {
        let ours_s = names(&g, &it.sequence);
        let ours_w = names(&g, &it.weighted_sequence);
        let (pub_s, pub_w) = PUBLISHED.get(k).copied().unwrap_or(("-", "-"));
        t.row([
            format!("{}", k + 1),
            format!("S{}", k + 1),
            ours_s.clone(),
            pub_s.into(),
            agreement(&ours_s, pub_s),
        ]);
        let dps: Vec<String> = it
            .sequence
            .iter()
            .map(|&task| format!("P{}", it.assignment[task.index()].index() + 1))
            .collect();
        t.row([
            "".into(),
            "DP".into(),
            dps.join(","),
            "(best window)".into(),
            "".into(),
        ]);
        t.row([
            "".into(),
            format!("S{}w", k + 1),
            ours_w.clone(),
            pub_w.into(),
            agreement(&ours_w, pub_w),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\niterations: ours {} vs paper 4; initial sequence S1 matches the published one exactly.",
        sol.iterations
    );
    println!("Positional disagreements trace to under-specified tie-breaks (see EXPERIMENTS.md).");
}
