//! # batsched-taskgraph
//!
//! The application model of the DATE'05 battery-aware scheduling paper:
//! directed acyclic task graphs whose tasks each expose `m` design points
//! (voltage/frequency pairs or FPGA bitstream variants) with known execution
//! time and platform current.
//!
//! Highlights:
//!
//! * [`graph::TaskGraph`] — validated DAG with the paper's matrix
//!   conventions (durations ascending, currents descending per task);
//! * [`topo`] — list-scheduling machinery shared by every sequencing
//!   strategy in the workspace;
//! * [`synth`] — voltage-scaling design-point synthesis and five topology
//!   generator families;
//! * [`paper`] — the paper's exact G2 (robotic arm) and G3 (fork-join)
//!   instances, golden-tested against the published tables;
//! * [`analysis`] — the normalisation constants behind the paper's factors.
//!
//! ```
//! use batsched_taskgraph::prelude::*;
//!
//! let g = batsched_taskgraph::paper::g3();
//! assert_eq!(g.task_count(), 15);
//! let order = topological_order(&g);
//! assert!(is_topological(&g, &order));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod design_point;
pub mod graph;
pub mod io;
pub mod paper;
pub mod synth;
pub mod topo;

pub use design_point::{pareto_filter, DesignPoint, EnergyMetric};
pub use graph::{PointId, TaskGraph, TaskGraphBuilder, TaskGraphError, TaskId, TaskNode};

/// Convenient glob-import of the types almost every user needs.
pub mod prelude {
    pub use crate::analysis::GraphStats;
    pub use crate::design_point::{DesignPoint, EnergyMetric};
    pub use crate::graph::{PointId, TaskGraph, TaskGraphError, TaskId};
    pub use crate::topo::{is_topological, list_schedule, topological_order};
    pub use batsched_battery::units::{MilliAmps, Minutes, Volts};
}
