//! The canonical wire format: versioned JSON request/response types with a
//! stable content hash.
//!
//! A request carries a task graph (validated through the typed
//! [`batsched_taskgraph::io`] path — this is untrusted input), a deadline,
//! an optional battery-model choice and optional algorithm knobs. Two
//! requests that *mean* the same thing — regardless of field order,
//! whitespace, or whether defaults are spelled out — share one **canonical
//! rendering** and therefore one content hash, which is what the result
//! cache keys on.
//!
//! Responses are plain data; the `cached` signal deliberately lives in
//! transport metadata (the HTTP `X-Cache` header, the
//! [`crate::service::Disposition`]) and *not* in the body, so a cache hit
//! is bit-identical to the recomputed response.

use batsched_battery::model::BatteryModel;
use batsched_battery::rv::{DATE05_BETA, DATE05_TERMS};
use batsched_battery::units::MilliAmps;
use batsched_battery::{CoulombCounter, KibamModel, MilliAmpMinutes, PeukertModel, RvModel};
use batsched_core::{SchedulerConfig, SchedulerError};
use batsched_taskgraph::io::{self, IoError};
use batsched_taskgraph::TaskGraph;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The wire-format version this build speaks. Requests must carry `"v": 1`.
pub const WIRE_VERSION: u32 = 1;

/// Default result-cache/max-iterations knob mirrored from the scheduler
/// config, pinned here so the canonical form is stable even if the core
/// default drifts.
pub const DEFAULT_MAX_ITERATIONS: usize = 64;

/// Hard ceiling on RV series terms accepted over the wire. The term count
/// sizes a per-request allocation, so untrusted requests must not pick it
/// freely; the series contributes nothing measurable long before this.
pub const MAX_MODEL_TERMS: usize = 4096;

/// Battery-model choice by name — the service's model registry.
///
/// The scheduler's search always optimises the Rakhmatov–Vrudhula σ (that
/// is the paper's algorithm); `Rv` parameters steer the search itself,
/// while the other models select what the *report* (cost at completion,
/// lifetime) is computed with. KiBaM reports run on the incremental
/// stepper ([`batsched_battery::KibamStepper`]), so they are not quadratic
/// in profile length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// Rakhmatov–Vrudhula diffusion model (the paper's eq. 1).
    Rv {
        /// Diffusion parameter β (min^{-1/2}); the paper uses 0.273.
        beta: f64,
        /// Series truncation; the paper uses 10.
        terms: usize,
    },
    /// Kinetic battery model (two wells).
    Kibam {
        /// Available-charge fraction `c ∈ (0, 1)`.
        c: f64,
        /// Diffusion rate `k > 0` (per minute).
        k: f64,
        /// Rated capacity (mA·min).
        alpha: f64,
    },
    /// Peukert's law.
    Peukert {
        /// Peukert exponent (≥ 1 for real cells).
        exponent: f64,
        /// Reference current (mA) at which capacity is rated.
        reference: f64,
    },
    /// Ideal coulomb counter (no rate-capacity or recovery effects).
    Ideal,
}

impl ModelSpec {
    /// The paper's RV setup — what an omitted `model` field means.
    pub fn default_rv() -> Self {
        Self::Rv {
            beta: DATE05_BETA,
            terms: DATE05_TERMS,
        }
    }

    /// Short model name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Rv { .. } => "rv",
            Self::Kibam { .. } => "kibam",
            Self::Peukert { .. } => "peukert",
            Self::Ideal => "ideal",
        }
    }

    /// `(beta, terms)` the σ-minimising search should run with: the RV
    /// parameters when the request picked RV, the paper's defaults when the
    /// reporting model is a different one.
    pub fn search_params(&self) -> (f64, usize) {
        match self {
            Self::Rv { beta, terms } => (*beta, *terms),
            _ => (DATE05_BETA, DATE05_TERMS),
        }
    }

    /// Instantiates the reporting model, validating its parameters.
    ///
    /// # Errors
    ///
    /// [`WireError::InvalidModel`] when a parameter is out of range.
    pub fn build(&self) -> Result<Box<dyn BatteryModel + Send + Sync>, WireError> {
        let bad = |e: &dyn fmt::Display| WireError::InvalidModel {
            message: e.to_string(),
        };
        // Untrusted knob that sizes an allocation: `RvModel` precomputes
        // one coefficient per series term, so a hostile request could
        // declare an absurd count and OOM the worker. The series has long
        // converged by this bound (the paper uses 10 terms).
        if let Self::Rv { terms, .. } = self {
            if *terms > MAX_MODEL_TERMS {
                return Err(WireError::InvalidModel {
                    message: format!("terms must be at most {MAX_MODEL_TERMS}, got {terms}"),
                });
            }
        }
        Ok(match self {
            Self::Rv { beta, terms } => Box::new(RvModel::new(*beta, *terms).map_err(|e| bad(&e))?),
            Self::Kibam { c, k, alpha } => Box::new(
                KibamModel::new(*c, *k, MilliAmpMinutes::new(*alpha)).map_err(|e| bad(&e))?,
            ),
            Self::Peukert {
                exponent,
                reference,
            } => Box::new(
                PeukertModel::new(*exponent, MilliAmps::new(*reference)).map_err(|e| bad(&e))?,
            ),
            Self::Ideal => Box::new(CoulombCounter::new()),
        })
    }
}

/// A versioned scheduling request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleRequest {
    /// Wire-format version; must equal [`WIRE_VERSION`].
    pub v: u32,
    /// The task graph to schedule (untrusted; fully revalidated).
    pub graph: TaskGraph,
    /// Deadline in minutes (positive, finite).
    pub deadline: f64,
    /// Battery model for the report; `None` means the paper's RV setup.
    pub model: Option<ModelSpec>,
    /// Rated capacity (mA·min): when present the response carries a
    /// lifetime verdict under the chosen model.
    pub capacity: Option<f64>,
    /// Cap on outer scheduler iterations; `None` means
    /// [`DEFAULT_MAX_ITERATIONS`].
    pub max_iterations: Option<usize>,
}

impl ScheduleRequest {
    /// A request with every optional field defaulted.
    pub fn new(graph: TaskGraph, deadline: f64) -> Self {
        Self {
            v: WIRE_VERSION,
            graph,
            deadline,
            model: None,
            capacity: None,
            max_iterations: None,
        }
    }

    /// The canonical twin of this request: version pinned, every optional
    /// field spelled out with its default. Two requests with equal
    /// canonical forms are answered identically, so the cache may treat
    /// them as one.
    pub fn canonical(&self) -> ScheduleRequest {
        ScheduleRequest {
            v: WIRE_VERSION,
            graph: self.graph.clone(),
            deadline: self.deadline,
            model: Some(self.model.clone().unwrap_or_else(ModelSpec::default_rv)),
            capacity: self.capacity,
            max_iterations: Some(self.max_iterations.unwrap_or(DEFAULT_MAX_ITERATIONS)),
        }
    }

    /// Compact JSON of [`Self::canonical`] — the byte string the content
    /// hash is computed over. Deterministic: struct fields serialise in
    /// declaration order and `f64`s print shortest-round-trip.
    ///
    /// This is the *reference* rendering (it clones the graph and builds a
    /// full value tree); the hot paths hash through [`render_canonical`]
    /// instead, and tests assert the two stay byte-identical.
    pub fn canonical_json(&self) -> String {
        // lint:allow(panic-path): the canonical value tree is built from an
        // already-validated request; serialising it cannot fail.
        serde_json::to_string(&self.canonical()).expect("requests always serialise")
    }

    /// FNV-1a 64 content hash of the canonical rendering, streamed — no
    /// graph clone, no value tree, no intermediate `String`.
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv::new();
        // lint:allow(panic-path): the FNV sink's Write impl is infallible;
        // the Result exists only to satisfy io::Write.
        render_canonical(self, &mut h).expect("hash sink never fails");
        h.finish()
    }

    /// The content hash as the 16-hex-digit cache key echoed in responses.
    pub fn key(&self) -> String {
        format!("{:016x}", self.content_hash())
    }
}

/// Streams the canonical rendering of `req` — byte-identical to
/// [`ScheduleRequest::canonical_json`] — into any [`fmt::Write`] sink,
/// walking the request in place: no graph clone, no value tree, no
/// intermediate `String`. Feeding an [`Fnv`] sink turns canonical hashing
/// into a single pass over the request, and the binary decoder
/// ([`crate::wire_bin`]) emits exactly these fragments during its byte
/// walk so both formats hash identically.
///
/// # Errors
///
/// Only what the sink itself reports; `String` and [`Fnv`] sinks never
/// fail.
pub fn render_canonical<W: fmt::Write>(req: &ScheduleRequest, out: &mut W) -> fmt::Result {
    out.write_str("{\"v\":")?;
    put_num(f64::from(WIRE_VERSION), out)?;
    out.write_str(",\"graph\":{\"tasks\":[")?;
    for (i, id) in req.graph.task_ids().enumerate() {
        if i > 0 {
            out.write_char(',')?;
        }
        let t = req.graph.task(id);
        out.write_str("{\"name\":")?;
        put_escaped(&t.name, out)?;
        out.write_str(",\"points\":[")?;
        for (j, p) in t.points.iter().enumerate() {
            if j > 0 {
                out.write_char(',')?;
            }
            out.write_str("{\"duration\":")?;
            put_num(p.duration.value(), out)?;
            out.write_str(",\"current\":")?;
            put_num(p.current.value(), out)?;
            out.write_str(",\"voltage\":")?;
            put_num(p.voltage.value(), out)?;
            out.write_char('}')?;
        }
        out.write_str("]}")?;
    }
    out.write_str("],\"edges\":[")?;
    for (i, (a, b)) in req.graph.edges().enumerate() {
        if i > 0 {
            out.write_char(',')?;
        }
        out.write_char('[')?;
        put_num(a.index() as f64, out)?;
        out.write_char(',')?;
        put_num(b.index() as f64, out)?;
        out.write_char(']')?;
    }
    out.write_str("]},\"deadline\":")?;
    put_num(req.deadline, out)?;
    out.write_str(",\"model\":")?;
    let default_model;
    let spec = match &req.model {
        Some(s) => s,
        None => {
            default_model = ModelSpec::default_rv();
            &default_model
        }
    };
    render_canonical_model(spec, out)?;
    out.write_str(",\"capacity\":")?;
    match req.capacity {
        Some(c) => put_num(c, out)?,
        None => out.write_str("null")?,
    }
    out.write_str(",\"max_iterations\":")?;
    put_num(
        req.max_iterations.unwrap_or(DEFAULT_MAX_ITERATIONS) as f64,
        out,
    )?;
    out.write_char('}')
}

/// The canonical rendering of one [`ModelSpec`] — byte-identical to how
/// the derived `Serialize` spells it (unit variants as strings, data
/// variants as single-key objects with fields in declaration order).
pub(crate) fn render_canonical_model<W: fmt::Write>(spec: &ModelSpec, out: &mut W) -> fmt::Result {
    match spec {
        ModelSpec::Rv { beta, terms } => {
            out.write_str("{\"Rv\":{\"beta\":")?;
            put_num(*beta, out)?;
            out.write_str(",\"terms\":")?;
            put_num(*terms as f64, out)?;
            out.write_str("}}")
        }
        ModelSpec::Kibam { c, k, alpha } => {
            out.write_str("{\"Kibam\":{\"c\":")?;
            put_num(*c, out)?;
            out.write_str(",\"k\":")?;
            put_num(*k, out)?;
            out.write_str(",\"alpha\":")?;
            put_num(*alpha, out)?;
            out.write_str("}}")
        }
        ModelSpec::Peukert {
            exponent,
            reference,
        } => {
            out.write_str("{\"Peukert\":{\"exponent\":")?;
            put_num(*exponent, out)?;
            out.write_str(",\"reference\":")?;
            put_num(*reference, out)?;
            out.write_str("}}")
        }
        ModelSpec::Ideal => out.write_str("\"Ideal\""),
    }
}

/// Writes `s` as a JSON string literal, escaping exactly like the vendored
/// serde renderer (so streamed output stays byte-identical to
/// `serde_json::to_string`).
pub(crate) fn put_escaped<W: fmt::Write>(s: &str, out: &mut W) -> fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

/// Writes a number exactly like the vendored serde renderer: shortest
/// round-trip for finite values, `null` for non-finite ones.
pub(crate) fn put_num<W: fmt::Write>(x: f64, out: &mut W) -> fmt::Result {
    if x.is_finite() {
        write!(out, "{x}")
    } else {
        out.write_str("null")
    }
}

/// Incremental FNV-1a 64 hasher that doubles as a [`fmt::Write`] sink, so
/// canonical hashing streams through [`render_canonical`] (or the binary
/// decoder's fused byte walk) without materialising the document.
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Fnv {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Write for Fnv {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.update(s.as_bytes());
        Ok(())
    }
}

/// Typed failure modes of [`parse_request`].
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The line is not valid JSON.
    Syntax {
        /// Parser message.
        message: String,
    },
    /// A required envelope field is absent.
    MissingField {
        /// The field name.
        field: &'static str,
    },
    /// An envelope field has the wrong type or shape.
    BadField {
        /// The field name.
        field: &'static str,
        /// What was wrong.
        message: String,
    },
    /// The request speaks a version this build does not.
    Version {
        /// The version the request carried.
        found: u32,
    },
    /// The embedded task graph was rejected (typed detail inside).
    Graph(IoError),
    /// Deadline not a positive finite number of minutes.
    InvalidDeadline {
        /// The offending value.
        deadline: f64,
    },
    /// Capacity not a positive finite number of mA·min.
    InvalidCapacity {
        /// The offending value.
        capacity: f64,
    },
    /// Battery-model parameters out of range or unknown model name.
    InvalidModel {
        /// What was wrong.
        message: String,
    },
    /// A binary-format framing problem: bad magic, truncated section,
    /// oversize declared length, or an ordering-invariant violation (see
    /// [`crate::wire_bin`] and `docs/WIRE.md`).
    Binary {
        /// What was wrong.
        message: String,
    },
}

impl WireError {
    /// Stable machine-readable error code for the response body.
    pub fn code(&self) -> &'static str {
        match self {
            Self::Syntax { .. } => "bad_json",
            Self::MissingField { .. } | Self::BadField { .. } => "bad_request",
            Self::Version { .. } => "unsupported_version",
            Self::Graph(_) => "invalid_graph",
            Self::InvalidDeadline { .. } => "invalid_deadline",
            Self::InvalidCapacity { .. } => "invalid_capacity",
            Self::InvalidModel { .. } => "invalid_model",
            Self::Binary { .. } => "bad_binary",
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Syntax { message } => write!(f, "invalid JSON: {message}"),
            Self::MissingField { field } => write!(f, "missing field `{field}`"),
            Self::BadField { field, message } => write!(f, "field `{field}`: {message}"),
            Self::Version { found } => write!(
                f,
                "unsupported wire version {found} (this build speaks {WIRE_VERSION})"
            ),
            Self::Graph(e) => write!(f, "invalid graph: {e}"),
            Self::InvalidDeadline { deadline } => {
                write!(f, "deadline must be positive and finite, got {deadline}")
            }
            Self::InvalidCapacity { capacity } => {
                write!(f, "capacity must be positive and finite, got {capacity}")
            }
            Self::InvalidModel { message } => write!(f, "invalid battery model: {message}"),
            Self::Binary { message } => write!(f, "invalid binary request: {message}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Parses and fully validates one request document. The graph goes through
/// [`io::graph_from_value`] (typed rejection of duplicate edges, bad
/// numbers, cycles, …); envelope numbers are range-checked; model
/// parameters are instantiated once to validate them.
///
/// # Errors
///
/// Every [`WireError`] variant is reachable; see its docs.
pub fn parse_request(doc: &str) -> Result<ScheduleRequest, WireError> {
    let v = serde::json::parse(doc).map_err(|e| WireError::Syntax {
        message: e.to_string(),
    })?;
    if v.as_obj().is_none() {
        return Err(WireError::BadField {
            field: "(root)",
            message: "expected a JSON object".into(),
        });
    }
    let req_field = |name: &'static str| v.get(name).ok_or(WireError::MissingField { field: name });
    let bad = |name: &'static str, e: &dyn fmt::Display| WireError::BadField {
        field: name,
        message: e.to_string(),
    };

    let version: u32 = serde::Deserialize::from_value(req_field("v")?).map_err(|e| bad("v", &e))?;
    if version != WIRE_VERSION {
        return Err(WireError::Version { found: version });
    }

    let graph = io::graph_from_value(req_field("graph")?).map_err(WireError::Graph)?;

    let deadline: f64 =
        serde::Deserialize::from_value(req_field("deadline")?).map_err(|e| bad("deadline", &e))?;
    if !(deadline.is_finite() && deadline > 0.0) {
        return Err(WireError::InvalidDeadline { deadline });
    }

    let model: Option<ModelSpec> = match v.get("model") {
        None => None,
        Some(mv) => serde::Deserialize::from_value(mv).map_err(|e| WireError::InvalidModel {
            message: e.to_string(),
        })?,
    };
    if let Some(spec) = &model {
        spec.build()?; // validate parameters now, with a typed error
    }

    let capacity: Option<f64> = match v.get("capacity") {
        None => None,
        Some(cv) => serde::Deserialize::from_value(cv).map_err(|e| bad("capacity", &e))?,
    };
    if let Some(c) = capacity {
        if !(c.is_finite() && c > 0.0) {
            return Err(WireError::InvalidCapacity { capacity: c });
        }
    }

    let max_iterations: Option<usize> = match v.get("max_iterations") {
        None => None,
        Some(mv) => serde::Deserialize::from_value(mv).map_err(|e| bad("max_iterations", &e))?,
    };
    if max_iterations == Some(0) {
        return Err(WireError::BadField {
            field: "max_iterations",
            message: "must be at least 1".into(),
        });
    }

    Ok(ScheduleRequest {
        v: version,
        graph,
        deadline,
        model,
        capacity,
        max_iterations,
    })
}

/// A successful scheduling answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleResponse {
    /// Wire-format version.
    pub v: u32,
    /// Canonical content hash of the request this answers (hex).
    pub key: String,
    /// Reporting battery-model name.
    pub model: String,
    /// Task indices in execution order.
    pub order: Vec<usize>,
    /// Task-indexed design-point columns (0 = fastest).
    pub assignment: Vec<usize>,
    /// RV battery cost σ of the schedule (mA·min) — what the search minimised.
    pub sigma: f64,
    /// Makespan (minutes).
    pub makespan: f64,
    /// The deadline the schedule meets (echoed from the request).
    pub deadline: f64,
    /// Charge actually delivered, `Σ I·D` (mA·min).
    pub direct_charge: f64,
    /// Apparent charge at completion under the reporting model (mA·min).
    pub model_cost: f64,
    /// `Some(true)` when a capacity was given and the battery survives the
    /// whole schedule; `Some(false)` when it dies first; `None` without a
    /// capacity.
    pub survives: Option<bool>,
    /// First instant the battery dies (minutes); `None` when it survives or
    /// no capacity was given.
    pub lifetime: Option<f64>,
    /// Outer scheduler iterations executed.
    pub iterations: usize,
}

/// A typed failure answer. `error` is a stable machine-readable code
/// (`bad_json`, `invalid_graph`, `infeasible`, `overloaded`, `timeout`,
/// `internal`, …); `message` is for humans.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Wire-format version.
    pub v: u32,
    /// Stable machine-readable error code.
    pub error: String,
    /// Human-readable detail.
    pub message: String,
}

impl ErrorResponse {
    /// Builds an error body from a code and message.
    pub fn new(code: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            v: WIRE_VERSION,
            error: code.into(),
            message: message.into(),
        }
    }

    /// The typed body for a request-parse failure.
    pub fn from_wire(e: &WireError) -> Self {
        Self::new(e.code(), e.to_string())
    }

    /// The typed body for a scheduler failure. Infeasible deadlines are the
    /// caller's problem (`infeasible`); internal search failures are ours.
    pub fn from_scheduler(e: &SchedulerError) -> Self {
        let code = match e {
            SchedulerError::DeadlineInfeasible { .. } => "infeasible",
            SchedulerError::InvalidDeadline { .. } => "invalid_deadline",
            SchedulerError::InvalidConfig { .. } => "invalid_config",
            SchedulerError::WindowSearchFailed { .. } => "internal",
        };
        Self::new(code, e.to_string())
    }

    /// The typed body for a full queue.
    pub fn overloaded(queue_capacity: usize) -> Self {
        Self::new(
            "overloaded",
            format!("request queue full (capacity {queue_capacity}); retry later"),
        )
    }

    /// The typed body for a request that exceeded its deadline.
    pub fn timeout(budget: std::time::Duration) -> Self {
        Self::new(
            "timeout",
            format!(
                "request exceeded its {}ms deadline; retry later",
                budget.as_millis()
            ),
        )
    }

    /// Compact JSON body.
    pub fn to_json(&self) -> String {
        // lint:allow(panic-path): the typed error body is two owned strings;
        // serialising it cannot fail.
        serde_json::to_string(self).expect("error responses always serialise")
    }
}

/// FNV-1a 64-bit — small, dependency-free, stable across platforms. Not
/// cryptographic: it is only ever an *index*, never a proof of identity —
/// the cache's raw-bytes fast path re-verifies the stored document
/// byte-for-byte before replaying, so an (accidental or adversarial)
/// collision costs a cache miss, never a wrong answer. Canonical-key
/// collisions between *semantically different* requests would conflate
/// their cache slots; at 64 bits and few-hundred-entry caches that risk
/// is accepted and documented in `docs/SERVICE.md`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds the scheduler configuration a request asks for.
pub fn scheduler_config(req: &ScheduleRequest) -> SchedulerConfig {
    let spec = req.model.clone().unwrap_or_else(ModelSpec::default_rv);
    let (beta, terms) = spec.search_params();
    SchedulerConfig {
        beta,
        series_terms: terms,
        max_iterations: req.max_iterations.unwrap_or(DEFAULT_MAX_ITERATIONS),
        ..SchedulerConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batsched_taskgraph::paper::g2;

    #[test]
    fn canonicalisation_is_field_order_and_default_insensitive() {
        let g = g2();
        let spelled = ScheduleRequest {
            v: 1,
            graph: g.clone(),
            deadline: 75.0,
            model: Some(ModelSpec::default_rv()),
            capacity: None,
            max_iterations: Some(DEFAULT_MAX_ITERATIONS),
        };
        let terse = ScheduleRequest::new(g, 75.0);
        assert_eq!(spelled.content_hash(), terse.content_hash());

        // Reordered fields in the document hash identically after parsing.
        let doc = terse.canonical_json();
        let parsed = parse_request(&doc).unwrap();
        assert_eq!(parsed.content_hash(), terse.content_hash());
    }

    #[test]
    fn different_requests_hash_differently() {
        let g = g2();
        let a = ScheduleRequest::new(g.clone(), 75.0);
        let b = ScheduleRequest::new(g.clone(), 76.0);
        let mut c = ScheduleRequest::new(g, 75.0);
        c.model = Some(ModelSpec::Ideal);
        assert_ne!(a.content_hash(), b.content_hash());
        assert_ne!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn parse_rejects_each_failure_mode_with_the_right_code() {
        let ok = serde_json::to_string(&ScheduleRequest::new(g2(), 75.0)).unwrap();
        assert!(parse_request(&ok).is_ok());

        let cases: Vec<(String, &str)> = vec![
            ("{ nope".into(), "bad_json"),
            ("[1,2,3]".into(), "bad_request"),
            (ok.replace("\"v\":1", "\"v\":99"), "unsupported_version"),
            (
                ok.replace("\"deadline\":75", "\"deadline\":-5"),
                "invalid_deadline",
            ),
            (
                ok.replace("\"deadline\":75", "\"deadline\":1e999"),
                "invalid_deadline",
            ),
            (
                ok.replace("\"capacity\":null", "\"capacity\":-1"),
                "invalid_capacity",
            ),
            (
                ok.replace(
                    "\"model\":null",
                    "\"model\":{\"Rv\":{\"beta\":-1,\"terms\":10}}",
                ),
                "invalid_model",
            ),
            (
                ok.replace("\"model\":null", "\"model\":{\"Frobnicator\":{}}"),
                "invalid_model",
            ),
            (
                ok.replace("\"max_iterations\":null", "\"max_iterations\":0"),
                "bad_request",
            ),
        ];
        for (doc, code) in cases {
            let e = parse_request(&doc).unwrap_err();
            assert_eq!(e.code(), code, "doc: {doc}\nerr: {e}");
        }

        // Missing required fields.
        assert_eq!(
            parse_request(r#"{"v":1}"#).unwrap_err().code(),
            "bad_request"
        );
        // Graph problems carry the invalid_graph code.
        let bad_graph = ok.replace("\"edges\":[", "\"edges\":[[0,1],[0,1],");
        assert_eq!(
            parse_request(&bad_graph).unwrap_err().code(),
            "invalid_graph"
        );
    }

    #[test]
    fn model_registry_builds_every_model() {
        for (spec, built_name) in [
            (ModelSpec::default_rv(), "rakhmatov-vrudhula"),
            (
                ModelSpec::Kibam {
                    c: 0.5,
                    k: 0.05,
                    alpha: 40_000.0,
                },
                "kibam",
            ),
            (
                ModelSpec::Peukert {
                    exponent: 1.2,
                    reference: 300.0,
                },
                "peukert",
            ),
            (ModelSpec::Ideal, "coulomb-counter"),
        ] {
            let m = spec.build().unwrap();
            assert_eq!(m.name(), built_name, "spec {}", spec.name());
        }
        assert!(ModelSpec::Kibam {
            c: 1.5,
            k: 0.05,
            alpha: 1.0
        }
        .build()
        .is_err());
    }

    #[test]
    fn fnv_vector() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        let mut inc = Fnv::new();
        assert_eq!(inc.finish(), fnv1a64(b""));
        inc.update(b"a");
        assert_eq!(inc.finish(), fnv1a64(b"a"));
    }

    #[test]
    fn streaming_canonical_rendering_matches_the_reference_oracle() {
        use batsched_taskgraph::paper::g3;
        // Every optional-field / model combination must render through the
        // streaming path byte-identically to the serde value-tree oracle —
        // and therefore hash to the same key.
        let mut requests = vec![
            ScheduleRequest::new(g2(), 75.0),
            ScheduleRequest::new(g3(), 230.5),
        ];
        let mut spelled = ScheduleRequest::new(g2(), 75.25);
        spelled.model = Some(ModelSpec::default_rv());
        spelled.capacity = Some(40_000.0);
        spelled.max_iterations = Some(7);
        requests.push(spelled);
        for model in [
            ModelSpec::Ideal,
            ModelSpec::Kibam {
                c: 0.5,
                k: 0.05,
                alpha: 40_000.0,
            },
            ModelSpec::Peukert {
                exponent: 1.2,
                reference: 300.0,
            },
        ] {
            let mut r = ScheduleRequest::new(g2(), 75.0);
            r.model = Some(model);
            requests.push(r);
        }
        for req in &requests {
            let oracle = req.canonical_json();
            let mut streamed = String::new();
            render_canonical(req, &mut streamed).unwrap();
            assert_eq!(streamed, oracle);
            assert_eq!(req.content_hash(), fnv1a64(oracle.as_bytes()));
        }
    }

    #[test]
    fn streaming_rendering_escapes_hostile_task_names() {
        use batsched_battery::units::{MilliAmps, Minutes, Volts};
        use batsched_taskgraph::{DesignPoint, TaskGraph};
        let mut b = TaskGraph::builder();
        b.task(
            "quote\" back\\slash \n\t ctrl\u{1} ünïcödé",
            vec![DesignPoint::with_voltage(
                MilliAmps::new(100.0),
                Minutes::new(1.5),
                Volts::new(1.0),
            )],
        );
        let g = b.build().unwrap();
        let req = ScheduleRequest::new(g, 10.0);
        let mut streamed = String::new();
        render_canonical(&req, &mut streamed).unwrap();
        assert_eq!(streamed, req.canonical_json());
        // The rendering must also survive a JSON round trip.
        let parsed = parse_request(&streamed).unwrap();
        assert_eq!(parsed.content_hash(), req.content_hash());
    }
}
