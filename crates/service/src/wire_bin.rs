//! The binary wire format: a versioned, length-prefixed encoding of
//! [`ScheduleRequest`]/[`ScheduleResponse`] negotiated on the HTTP
//! frontend by `Content-Type: application/x-batsched-bin` (see
//! `docs/WIRE.md` for the byte-level layout).
//!
//! The decoder is a **single pass with no intermediate tree**: each field
//! is read straight out of the input buffer into the `TaskGraph` builder's
//! buffers, and the canonical content hash is folded into the same byte
//! walk — as each field is decoded, the exact canonical-JSON fragment it
//! corresponds to is streamed into an incremental [`Fnv`] hasher. Because
//! the format requires design points sorted by ascending duration and a
//! strictly sorted edge table (the orders the graph builder normalises
//! to), the builder's stable sort is a no-op and the fused hash equals
//! [`ScheduleRequest::content_hash`] of the decoded request byte-for-byte:
//! `decode(encode(r)).key() == r.key()` for every valid request, in either
//! format.
//!
//! Hostile input never panics or over-allocates: every declared count is
//! capped against the bytes actually remaining before any allocation, and
//! framing violations answer a typed [`WireError::Binary`] (`bad_binary`)
//! while semantic violations reuse the JSON path's typed errors
//! (`invalid_deadline`, `invalid_graph`, …) so clients see one taxonomy.

use crate::wire::{
    put_escaped, put_num, render_canonical_model, Fnv, ModelSpec, ScheduleRequest,
    ScheduleResponse, WireError, DEFAULT_MAX_ITERATIONS, WIRE_VERSION,
};
use batsched_battery::units::{MilliAmps, Minutes, Volts};
use batsched_taskgraph::io::IoError;
use batsched_taskgraph::{DesignPoint, TaskGraph, TaskNode};

/// The negotiated media type for binary requests and responses.
pub const CONTENT_TYPE: &str = "application/x-batsched-bin";

/// Shared 4-byte magic opening every binary document.
pub const MAGIC: [u8; 4] = *b"BSCH";

/// Kind byte: a request document.
pub const KIND_REQUEST: u8 = 0x01;

/// Kind byte: a response document.
pub const KIND_RESPONSE: u8 = 0x02;

/// Binary format version byte (tracks [`WIRE_VERSION`]).
pub const BIN_VERSION: u8 = 0x01;

/// Which wire format a request arrived in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum WireFormat {
    /// JSON (`application/json`, the compat path).
    #[default]
    Json,
    /// Binary (`application/x-batsched-bin`).
    Binary,
}

impl WireFormat {
    /// Stable label for spans, stats and metrics.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Json => "json",
            Self::Binary => "binary",
        }
    }
}

fn berr(message: impl Into<String>) -> WireError {
    WireError::Binary {
        message: message.into(),
    }
}

/// A bounds-checked little-endian cursor over untrusted bytes.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        // Checked access end to end: `get` returns exactly `n` bytes or
        // None, so no hostile length can panic the decoding thread.
        let s = self
            .buf
            .get(self.pos..self.pos.saturating_add(n))
            .ok_or_else(|| {
                berr(format!(
                    "truncated input: {what} needs {n} bytes, {} remain",
                    self.remaining()
                ))
            })?;
        self.pos += n;
        Ok(s)
    }

    /// `take` with a compile-time width: the array pattern destructure is
    /// irrefutable, so the integer readers below index nothing.
    fn take_array<const N: usize>(&mut self, what: &str) -> Result<[u8; N], WireError> {
        let s = self.take(N, what)?;
        s.try_into()
            .map_err(|_| berr(format!("{what}: internal framing error")))
    }

    fn u8(&mut self, what: &str) -> Result<u8, WireError> {
        let [b] = self.take_array(what)?;
        Ok(b)
    }

    fn u16(&mut self, what: &str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take_array(what)?))
    }

    fn u32(&mut self, what: &str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take_array(what)?))
    }

    fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take_array(what)?))
    }

    fn f64(&mut self, what: &str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// A `u16`-length-prefixed UTF-8 string.
    fn str(&mut self, what: &str) -> Result<&'a str, WireError> {
        let len = self.u16(what)? as usize;
        let bytes = self.take(len, what)?;
        std::str::from_utf8(bytes).map_err(|_| berr(format!("{what} is not valid UTF-8")))
    }

    /// Caps a declared element count against the bytes actually remaining
    /// (`min_bytes` per element) so hostile lengths cannot drive an
    /// allocation past the input size.
    fn cap_count(&self, declared: usize, min_bytes: usize, what: &str) -> Result<(), WireError> {
        if declared > self.remaining() / min_bytes {
            return Err(berr(format!(
                "declared {what} count {declared} exceeds the input ({} bytes remain)",
                self.remaining()
            )));
        }
        Ok(())
    }
}

fn check_header(r: &mut Reader<'_>, kind: u8, label: &str) -> Result<(), WireError> {
    let magic = r.take(4, "magic")?;
    if magic != MAGIC {
        return Err(berr(format!("bad magic {magic:02x?}")));
    }
    let k = r.u8("kind byte")?;
    if k != kind {
        return Err(berr(format!("kind byte {k:#04x} is not a {label}")));
    }
    let version = r.u8("version byte")?;
    if version != BIN_VERSION {
        return Err(WireError::Version {
            found: u32::from(version),
        });
    }
    Ok(())
}

/// Encodes a request. Tasks, design points and edges are emitted in the
/// graph's normalised order, so the output always satisfies the sortedness
/// invariants [`decode_request`] enforces.
pub fn encode_request(req: &ScheduleRequest) -> Vec<u8> {
    let g = &req.graph;
    // lint:allow(uncapped-wire-alloc): encoder, not decoder — the size comes
    // from an already-validated in-memory graph, not from wire input.
    let mut out = Vec::with_capacity(64 + g.task_count() * 64 + g.edge_count() * 8);
    out.extend_from_slice(&MAGIC);
    out.push(KIND_REQUEST);
    out.push(BIN_VERSION);
    out.extend_from_slice(&(g.task_count() as u32).to_le_bytes());
    for id in g.task_ids() {
        let t = g.task(id);
        out.extend_from_slice(&(t.name.len() as u16).to_le_bytes());
        out.extend_from_slice(t.name.as_bytes());
        out.extend_from_slice(&(t.points.len() as u16).to_le_bytes());
        for p in &t.points {
            out.extend_from_slice(&p.duration.value().to_bits().to_le_bytes());
            out.extend_from_slice(&p.current.value().to_bits().to_le_bytes());
            out.extend_from_slice(&p.voltage.value().to_bits().to_le_bytes());
        }
    }
    out.extend_from_slice(&(g.edge_count() as u32).to_le_bytes());
    for (a, b) in g.edges() {
        out.extend_from_slice(&(a.index() as u32).to_le_bytes());
        out.extend_from_slice(&(b.index() as u32).to_le_bytes());
    }
    out.extend_from_slice(&req.deadline.to_bits().to_le_bytes());
    match &req.model {
        None => out.push(0),
        Some(ModelSpec::Rv { beta, terms }) => {
            out.push(1);
            out.extend_from_slice(&beta.to_bits().to_le_bytes());
            out.extend_from_slice(&(*terms as u64).to_le_bytes());
        }
        Some(ModelSpec::Kibam { c, k, alpha }) => {
            out.push(2);
            out.extend_from_slice(&c.to_bits().to_le_bytes());
            out.extend_from_slice(&k.to_bits().to_le_bytes());
            out.extend_from_slice(&alpha.to_bits().to_le_bytes());
        }
        Some(ModelSpec::Peukert {
            exponent,
            reference,
        }) => {
            out.push(3);
            out.extend_from_slice(&exponent.to_bits().to_le_bytes());
            out.extend_from_slice(&reference.to_bits().to_le_bytes());
        }
        Some(ModelSpec::Ideal) => out.push(4),
    }
    match req.capacity {
        None => out.push(0),
        Some(c) => {
            out.push(1);
            out.extend_from_slice(&c.to_bits().to_le_bytes());
        }
    }
    match req.max_iterations {
        None => out.push(0),
        Some(n) => {
            out.push(1);
            out.extend_from_slice(&(n as u64).to_le_bytes());
        }
    }
    out
}

/// Decodes and fully validates one binary request in a single fused pass,
/// returning the request together with its canonical content hash (equal
/// to [`ScheduleRequest::content_hash`], computed during the same byte
/// walk — the JSON path's separate parse-then-hash passes collapse into
/// one here).
///
/// Format invariants beyond framing: design points sorted by ascending
/// duration within each task, and the edge table strictly sorted by
/// `(from, to)` — the graph builder's normalised orders, which is what
/// makes hashing-while-decoding sound.
///
/// # Errors
///
/// [`WireError::Binary`] for framing problems; the JSON path's typed
/// errors ([`WireError::Graph`], [`WireError::InvalidDeadline`], …) for
/// semantic ones.
pub fn decode_request(buf: &[u8]) -> Result<(ScheduleRequest, u64), WireError> {
    let mut r = Reader::new(buf);
    check_header(&mut r, KIND_REQUEST, "request")?;
    let mut h = Fnv::new();
    h.update(b"{\"v\":1,\"graph\":{\"tasks\":[");

    let task_count = r.u32("task count")? as usize;
    r.cap_count(task_count, 4, "task")?;
    let mut tasks = Vec::with_capacity(task_count);
    for i in 0..task_count {
        if i > 0 {
            h.update(b",");
        }
        let name = r.str("task name")?;
        h.update(b"{\"name\":");
        let _ = put_escaped(name, &mut h);
        h.update(b",\"points\":[");
        let point_count = r.u16("point count")? as usize;
        r.cap_count(point_count, 24, "design point")?;
        let mut points = Vec::with_capacity(point_count);
        let mut prev_duration = f64::NEG_INFINITY;
        for j in 0..point_count {
            let duration = r.f64("duration")?;
            let current = r.f64("current")?;
            let voltage = r.f64("voltage")?;
            let bad = |message: &str| {
                WireError::Graph(IoError::InvalidValue {
                    task: name.to_string(),
                    point: j,
                    message: message.into(),
                })
            };
            if !(duration.is_finite() && duration > 0.0) {
                return Err(bad("duration must be positive and finite"));
            }
            if !(current.is_finite() && current >= 0.0) {
                return Err(bad("current must be non-negative and finite"));
            }
            if !(voltage.is_finite() && voltage > 0.0) {
                return Err(bad("voltage must be positive and finite"));
            }
            if duration < prev_duration {
                return Err(berr(format!(
                    "design points of task {name} must be sorted by ascending duration"
                )));
            }
            prev_duration = duration;
            if j > 0 {
                h.update(b",");
            }
            h.update(b"{\"duration\":");
            let _ = put_num(duration, &mut h);
            h.update(b",\"current\":");
            let _ = put_num(current, &mut h);
            h.update(b",\"voltage\":");
            let _ = put_num(voltage, &mut h);
            h.update(b"}");
            points.push(DesignPoint::with_voltage(
                MilliAmps::new(current),
                Minutes::new(duration),
                Volts::new(voltage),
            ));
        }
        h.update(b"]}");
        tasks.push(TaskNode {
            name: name.to_string(),
            points,
        });
    }

    h.update(b"],\"edges\":[");
    let edge_count = r.u32("edge count")? as usize;
    r.cap_count(edge_count, 8, "edge")?;
    let mut edges = Vec::with_capacity(edge_count);
    let mut prev_edge: Option<(usize, usize)> = None;
    for e in 0..edge_count {
        let u = r.u32("edge source")? as usize;
        let v = r.u32("edge target")? as usize;
        if u >= task_count || v >= task_count {
            return Err(berr(format!("edge ({u},{v}) references an unknown task")));
        }
        if let Some(p) = prev_edge {
            if (u, v) <= p {
                return Err(berr(
                    "edge table must be strictly sorted by (from, to) with no duplicates",
                ));
            }
        }
        prev_edge = Some((u, v));
        if e > 0 {
            h.update(b",");
        }
        h.update(b"[");
        let _ = put_num(u as f64, &mut h);
        h.update(b",");
        let _ = put_num(v as f64, &mut h);
        h.update(b"]");
        edges.push((u, v));
    }

    h.update(b"]},\"deadline\":");
    let deadline = r.f64("deadline")?;
    let _ = put_num(deadline, &mut h);
    if !(deadline.is_finite() && deadline > 0.0) {
        return Err(WireError::InvalidDeadline { deadline });
    }

    h.update(b",\"model\":");
    let model = match r.u8("model tag")? {
        0 => None,
        1 => {
            let beta = r.f64("rv beta")?;
            let terms =
                usize::try_from(r.u64("rv terms")?).map_err(|_| berr("rv terms out of range"))?;
            Some(ModelSpec::Rv { beta, terms })
        }
        2 => Some(ModelSpec::Kibam {
            c: r.f64("kibam c")?,
            k: r.f64("kibam k")?,
            alpha: r.f64("kibam alpha")?,
        }),
        3 => Some(ModelSpec::Peukert {
            exponent: r.f64("peukert exponent")?,
            reference: r.f64("peukert reference")?,
        }),
        4 => Some(ModelSpec::Ideal),
        tag => return Err(berr(format!("unknown model tag {tag:#04x}"))),
    };
    let default_model;
    let spec = match &model {
        Some(s) => s,
        None => {
            default_model = ModelSpec::default_rv();
            &default_model
        }
    };
    let _ = render_canonical_model(spec, &mut h);
    spec.build()?; // validate parameters now, with a typed error

    h.update(b",\"capacity\":");
    let capacity = match r.u8("capacity flag")? {
        0 => None,
        1 => Some(r.f64("capacity")?),
        f => return Err(berr(format!("capacity flag must be 0 or 1, got {f}"))),
    };
    match capacity {
        Some(c) if !(c.is_finite() && c > 0.0) => {
            return Err(WireError::InvalidCapacity { capacity: c });
        }
        Some(c) => {
            let _ = put_num(c, &mut h);
        }
        None => h.update(b"null"),
    }

    h.update(b",\"max_iterations\":");
    let max_iterations = match r.u8("max_iterations flag")? {
        0 => None,
        1 => {
            let n = usize::try_from(r.u64("max_iterations")?)
                .map_err(|_| berr("max_iterations out of range"))?;
            if n == 0 {
                return Err(WireError::BadField {
                    field: "max_iterations",
                    message: "must be at least 1".into(),
                });
            }
            Some(n)
        }
        f => return Err(berr(format!("max_iterations flag must be 0 or 1, got {f}"))),
    };
    let _ = put_num(
        max_iterations.unwrap_or(DEFAULT_MAX_ITERATIONS) as f64,
        &mut h,
    );
    h.update(b"}");

    if r.remaining() != 0 {
        return Err(berr(format!(
            "{} trailing bytes after the request",
            r.remaining()
        )));
    }

    let graph = TaskGraph::from_parts(tasks, edges, true)
        .map_err(|e| WireError::Graph(IoError::Graph(e)))?;
    Ok((
        ScheduleRequest {
            v: WIRE_VERSION,
            graph,
            deadline,
            model,
            capacity,
            max_iterations,
        },
        h.finish(),
    ))
}

fn push_str16(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len().min(u16::MAX as usize) as u16).to_le_bytes());
    out.extend_from_slice(&s.as_bytes()[..s.len().min(u16::MAX as usize)]);
}

fn push_index_vec(out: &mut Vec<u8>, xs: &[usize]) {
    out.extend_from_slice(&(xs.len() as u32).to_le_bytes());
    for &x in xs {
        out.extend_from_slice(&(x as u32).to_le_bytes());
    }
}

/// Encodes a response (`Accept`-negotiated on the HTTP frontend; also the
/// disk tier's v2 record body).
pub fn encode_response(resp: &ScheduleResponse) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        96 + resp.key.len() + resp.model.len() + 4 * (resp.order.len() + resp.assignment.len()),
    );
    out.extend_from_slice(&MAGIC);
    out.push(KIND_RESPONSE);
    out.push(BIN_VERSION);
    out.extend_from_slice(&resp.v.to_le_bytes());
    push_str16(&mut out, &resp.key);
    push_str16(&mut out, &resp.model);
    push_index_vec(&mut out, &resp.order);
    push_index_vec(&mut out, &resp.assignment);
    for x in [
        resp.sigma,
        resp.makespan,
        resp.deadline,
        resp.direct_charge,
        resp.model_cost,
    ] {
        out.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    out.push(match resp.survives {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    });
    match resp.lifetime {
        None => out.push(0),
        Some(t) => {
            out.push(1);
            out.extend_from_slice(&t.to_bits().to_le_bytes());
        }
    }
    out.extend_from_slice(&(resp.iterations as u64).to_le_bytes());
    out
}

fn read_index_vec(r: &mut Reader<'_>, what: &str) -> Result<Vec<usize>, WireError> {
    let n = r.u32(what)? as usize;
    r.cap_count(n, 4, what)?;
    let mut xs = Vec::with_capacity(n);
    for _ in 0..n {
        xs.push(r.u32(what)? as usize);
    }
    Ok(xs)
}

/// Decodes one binary response. Same hardening rules as
/// [`decode_request`]: counts capped before allocation, truncation and
/// trailing bytes answer typed errors, never panics.
///
/// # Errors
///
/// [`WireError::Binary`] for framing problems, [`WireError::Version`] for
/// an unknown version byte.
pub fn decode_response(buf: &[u8]) -> Result<ScheduleResponse, WireError> {
    let mut r = Reader::new(buf);
    check_header(&mut r, KIND_RESPONSE, "response")?;
    let v = r.u32("response version")?;
    let key = r.str("key")?.to_string();
    let model = r.str("model name")?.to_string();
    let order = read_index_vec(&mut r, "order entry")?;
    let assignment = read_index_vec(&mut r, "assignment entry")?;
    let sigma = r.f64("sigma")?;
    let makespan = r.f64("makespan")?;
    let deadline = r.f64("deadline")?;
    let direct_charge = r.f64("direct_charge")?;
    let model_cost = r.f64("model_cost")?;
    let survives = match r.u8("survives flag")? {
        0 => None,
        1 => Some(false),
        2 => Some(true),
        f => return Err(berr(format!("survives flag must be 0..=2, got {f}"))),
    };
    let lifetime = match r.u8("lifetime flag")? {
        0 => None,
        1 => Some(r.f64("lifetime")?),
        f => return Err(berr(format!("lifetime flag must be 0 or 1, got {f}"))),
    };
    let iterations =
        usize::try_from(r.u64("iterations")?).map_err(|_| berr("iterations out of range"))?;
    if r.remaining() != 0 {
        return Err(berr(format!(
            "{} trailing bytes after the response",
            r.remaining()
        )));
    }
    Ok(ScheduleResponse {
        v,
        key,
        model,
        order,
        assignment,
        sigma,
        makespan,
        deadline,
        direct_charge,
        model_cost,
        survives,
        lifetime,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::parse_request;
    use batsched_taskgraph::paper::{g2, g3};

    fn requests() -> Vec<ScheduleRequest> {
        let mut reqs = vec![
            ScheduleRequest::new(g2(), 75.0),
            ScheduleRequest::new(g3(), 230.5),
        ];
        let mut spelled = ScheduleRequest::new(g2(), 75.25);
        spelled.model = Some(ModelSpec::Kibam {
            c: 0.5,
            k: 0.05,
            alpha: 40_000.0,
        });
        spelled.capacity = Some(40_000.0);
        spelled.max_iterations = Some(7);
        reqs.push(spelled);
        let mut ideal = ScheduleRequest::new(g3(), 231.0);
        ideal.model = Some(ModelSpec::Ideal);
        reqs.push(ideal);
        reqs
    }

    #[test]
    fn round_trip_preserves_the_request_and_fuses_the_canonical_hash() {
        for req in requests() {
            let bin = encode_request(&req);
            let (decoded, hash) = decode_request(&bin).unwrap();
            assert_eq!(decoded, req);
            assert_eq!(hash, req.content_hash(), "fused hash must equal key");
            // Cross-format: the JSON spelling of the same request keys
            // identically.
            let json = serde_json::to_string(&req).unwrap();
            let parsed = parse_request(&json).unwrap();
            assert_eq!(parsed.content_hash(), hash);
        }
    }

    #[test]
    fn truncation_at_every_byte_is_a_typed_error_never_a_panic() {
        let bin = encode_request(&requests().remove(2));
        for cut in 0..bin.len() {
            let e = decode_request(&bin[..cut]).expect_err("truncated input must fail");
            assert!(
                matches!(e, WireError::Binary { .. } | WireError::Version { .. }),
                "cut at {cut}: {e}"
            );
        }
        // The full document still decodes.
        assert!(decode_request(&bin).is_ok());
    }

    #[test]
    fn hostile_declared_lengths_are_capped_before_allocation() {
        // task_count claims 4 billion tasks in a 30-byte document.
        let mut doc = Vec::new();
        doc.extend_from_slice(&MAGIC);
        doc.push(KIND_REQUEST);
        doc.push(BIN_VERSION);
        doc.extend_from_slice(&u32::MAX.to_le_bytes());
        doc.extend_from_slice(&[0u8; 24]);
        let e = decode_request(&doc).unwrap_err();
        assert_eq!(e.code(), "bad_binary");
        assert!(e.to_string().contains("task count"), "{e}");

        // A huge name length inside an otherwise tiny document.
        let mut doc = Vec::new();
        doc.extend_from_slice(&MAGIC);
        doc.push(KIND_REQUEST);
        doc.push(BIN_VERSION);
        doc.extend_from_slice(&1u32.to_le_bytes());
        doc.extend_from_slice(&u16::MAX.to_le_bytes());
        doc.extend_from_slice(b"ab");
        let e = decode_request(&doc).unwrap_err();
        assert_eq!(e.code(), "bad_binary");

        // An edge count past the remaining bytes.
        let base = encode_request(&ScheduleRequest::new(g2(), 75.0));
        // Find the edge-count offset by re-walking: header + tasks.
        let mut r = Reader::new(&base);
        check_header(&mut r, KIND_REQUEST, "request").unwrap();
        let tc = r.u32("tc").unwrap();
        for _ in 0..tc {
            let _ = r.str("n").unwrap();
            let pc = r.u16("pc").unwrap();
            let _ = r.take(24 * pc as usize, "pts").unwrap();
        }
        let edge_count_at = r.pos;
        let mut doc = base.clone();
        doc[edge_count_at..edge_count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let e = decode_request(&doc).unwrap_err();
        assert_eq!(e.code(), "bad_binary");
        assert!(e.to_string().contains("edge count"), "{e}");
    }

    #[test]
    fn semantic_violations_reuse_the_json_paths_typed_errors() {
        let mut nan_deadline = ScheduleRequest::new(g2(), 75.0);
        nan_deadline.deadline = f64::NAN;
        let e = decode_request(&encode_request(&nan_deadline)).unwrap_err();
        assert_eq!(e.code(), "invalid_deadline");

        let mut neg_capacity = ScheduleRequest::new(g2(), 75.0);
        neg_capacity.capacity = Some(-1.0);
        let e = decode_request(&encode_request(&neg_capacity)).unwrap_err();
        assert_eq!(e.code(), "invalid_capacity");

        let mut bad_model = ScheduleRequest::new(g2(), 75.0);
        bad_model.model = Some(ModelSpec::Rv {
            beta: -1.0,
            terms: 10,
        });
        let e = decode_request(&encode_request(&bad_model)).unwrap_err();
        assert_eq!(e.code(), "invalid_model");

        let mut zero_iters = ScheduleRequest::new(g2(), 75.0);
        zero_iters.max_iterations = Some(1);
        let mut doc = encode_request(&zero_iters);
        // The trailing u64 is the iteration cap; zero it out.
        let n = doc.len();
        doc[n - 8..].copy_from_slice(&0u64.to_le_bytes());
        let e = decode_request(&doc).unwrap_err();
        assert_eq!(e.code(), "bad_request");

        // A NaN duration smuggled into the first design point.
        let base = encode_request(&ScheduleRequest::new(g2(), 75.0));
        let mut r = Reader::new(&base);
        check_header(&mut r, KIND_REQUEST, "request").unwrap();
        let _ = r.u32("tc").unwrap();
        let _ = r.str("n").unwrap();
        let _ = r.u16("pc").unwrap();
        let duration_at = r.pos;
        let mut doc = base.clone();
        doc[duration_at..duration_at + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        let e = decode_request(&doc).unwrap_err();
        assert_eq!(e.code(), "invalid_graph");
        assert!(e.to_string().contains("duration"), "{e}");
    }

    #[test]
    fn framing_violations_are_typed() {
        // Wrong magic.
        let mut doc = encode_request(&ScheduleRequest::new(g2(), 75.0));
        doc[0] = b'X';
        assert_eq!(decode_request(&doc).unwrap_err().code(), "bad_binary");

        // A response kind byte where a request is expected.
        let mut doc = encode_request(&ScheduleRequest::new(g2(), 75.0));
        doc[4] = KIND_RESPONSE;
        assert_eq!(decode_request(&doc).unwrap_err().code(), "bad_binary");

        // An unknown version byte maps to unsupported_version.
        let mut doc = encode_request(&ScheduleRequest::new(g2(), 75.0));
        doc[5] = 9;
        assert_eq!(
            decode_request(&doc).unwrap_err().code(),
            "unsupported_version"
        );

        // Trailing garbage after a complete request.
        let mut doc = encode_request(&ScheduleRequest::new(g2(), 75.0));
        doc.push(0xFF);
        let e = decode_request(&doc).unwrap_err();
        assert_eq!(e.code(), "bad_binary");
        assert!(e.to_string().contains("trailing"), "{e}");

        // An unsorted edge table (the sortedness invariant).
        let req = ScheduleRequest::new(g2(), 75.0);
        let good = encode_request(&req);
        let mut r = Reader::new(&good);
        check_header(&mut r, KIND_REQUEST, "request").unwrap();
        let tc = r.u32("tc").unwrap();
        for _ in 0..tc {
            let _ = r.str("n").unwrap();
            let pc = r.u16("pc").unwrap();
            let _ = r.take(24 * pc as usize, "pts").unwrap();
        }
        let ec = r.u32("ec").unwrap();
        assert!(ec >= 2, "g2 has multiple edges");
        let first_edge_at = r.pos;
        let mut doc = good.clone();
        // Swap the first two edges: breaks strict (from, to) ordering.
        let (a, b) = (first_edge_at, first_edge_at + 8);
        for i in 0..8 {
            doc.swap(a + i, b + i);
        }
        let e = decode_request(&doc).unwrap_err();
        assert_eq!(e.code(), "bad_binary");
        assert!(e.to_string().contains("sorted"), "{e}");
    }

    #[test]
    fn response_round_trip_is_bit_identical_through_json() {
        let resp = ScheduleResponse {
            v: WIRE_VERSION,
            key: "00aabbccddeeff11".into(),
            model: "rv".into(),
            order: vec![0, 2, 1],
            assignment: vec![1, 0, 3],
            sigma: 1234.5678,
            makespan: 74.9,
            deadline: 75.0,
            direct_charge: 1111.25,
            model_cost: 1300.0625,
            survives: Some(true),
            lifetime: None,
            iterations: 12,
        };
        let json = serde_json::to_string(&resp).unwrap();
        let bin = encode_response(&resp);
        let decoded = decode_response(&bin).unwrap();
        assert_eq!(decoded, resp);
        assert_eq!(serde_json::to_string(&decoded).unwrap(), json);
        // Binary responses are materially smaller than their JSON twins.
        assert!(bin.len() < json.len(), "{} vs {}", bin.len(), json.len());
    }

    #[test]
    fn response_decoder_survives_truncation_and_trailing_bytes() {
        let resp = ScheduleResponse {
            v: WIRE_VERSION,
            key: "k".into(),
            model: "rv".into(),
            order: vec![0],
            assignment: vec![0],
            sigma: 1.0,
            makespan: 1.0,
            deadline: 2.0,
            direct_charge: 1.0,
            model_cost: 1.0,
            survives: None,
            lifetime: Some(3.5),
            iterations: 1,
        };
        let bin = encode_response(&resp);
        for cut in 0..bin.len() {
            let e = decode_response(&bin[..cut]).expect_err("truncated response must fail");
            assert!(
                matches!(e, WireError::Binary { .. } | WireError::Version { .. }),
                "cut {cut}: {e}"
            );
        }
        let mut doc = bin.clone();
        doc.push(0);
        assert_eq!(decode_response(&doc).unwrap_err().code(), "bad_binary");
        assert_eq!(decode_response(&bin).unwrap(), resp);
    }
}
