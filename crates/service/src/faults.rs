//! The fault-injection plane: deterministic, in-process fault rules that
//! chaos tests and `loadgen --chaos` arm to drive the service's failure
//! paths on purpose instead of hoping production finds them first.
//!
//! The plane is compiled into every build but costs one atomic load per
//! probe site when disarmed (the default). A [`FaultPlane`] is a cheap
//! `Arc` clone shared by the disk tier and the worker pool; each
//! [`FaultRule`] selects a site, an eligibility window (`after`, `count`,
//! `every`) and an optional key/body substring predicate, so a test can
//! say "fail the 6th through 15th disk appends" or "panic the solver once
//! on the request containing `deadline\":75`" and get exactly that.
//!
//! Rules are also parseable from compact spec strings
//! (`site:after=A,count=C,every=E,ms=M,key=S`) so the same grammar serves
//! the `batsched serve --fault` flag and the test suite.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Where a fault rule injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// `DiskTier::get` — the read fails with an I/O error.
    DiskRead,
    /// `DiskTier::put` — the append fails with an I/O error.
    DiskAppend,
    /// `DiskTier::compact` (and the torn-tail repair) — the rewrite fails.
    DiskWrite,
    /// The solver worker panics instead of solving.
    SolverPanic,
    /// The solver worker sleeps before solving.
    SolverLatency,
    /// The HTTP frontend severs the connection mid-response body after
    /// answering — what a crashing upstream looks like to a router.
    ConnDrop,
    /// The HTTP frontend sleeps before writing the response — what a
    /// wedged upstream looks like to a router's read timeout.
    ConnStall,
}

impl FaultSite {
    /// The spec-string name of this site.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::DiskRead => "disk-read",
            FaultSite::DiskAppend => "disk-append",
            FaultSite::DiskWrite => "disk-write",
            FaultSite::SolverPanic => "solver-panic",
            FaultSite::SolverLatency => "solver-latency",
            FaultSite::ConnDrop => "conn-drop",
            FaultSite::ConnStall => "conn-stall",
        }
    }

    fn parse(name: &str) -> Option<FaultSite> {
        Some(match name {
            "disk-read" => FaultSite::DiskRead,
            "disk-append" => FaultSite::DiskAppend,
            "disk-write" => FaultSite::DiskWrite,
            "solver-panic" => FaultSite::SolverPanic,
            "solver-latency" => FaultSite::SolverLatency,
            "conn-drop" => FaultSite::ConnDrop,
            "conn-stall" => FaultSite::ConnStall,
            _ => return None,
        })
    }
}

/// One injection rule: *where* to inject plus *which* eligible operations
/// to hit. An operation is eligible when its site matches and `key`
/// (if set) is a substring of the operation's key/body. Among eligible
/// operations, the first `after` are skipped, then every `every`-th one
/// injects, at most `count` times total.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    /// The probe site this rule arms.
    pub site: FaultSite,
    /// Eligible operations to skip before injecting at all.
    pub after: u64,
    /// Maximum number of injections (`u64::MAX` = unlimited).
    pub count: u64,
    /// Inject on every `every`-th eligible operation past `after` (1 =
    /// each one).
    pub every: u64,
    /// Sleep duration for [`FaultSite::SolverLatency`] rules.
    pub latency: Option<Duration>,
    /// Only operations whose key/body contains this substring are
    /// eligible.
    pub key_contains: Option<String>,
}

impl FaultRule {
    /// A rule for `site` that injects on every eligible operation.
    pub fn always(site: FaultSite) -> Self {
        Self {
            site,
            after: 0,
            count: u64::MAX,
            every: 1,
            latency: None,
            key_contains: None,
        }
    }

    /// Skip the first `n` eligible operations.
    #[must_use]
    pub fn after(mut self, n: u64) -> Self {
        self.after = n;
        self
    }

    /// Inject at most `n` times.
    #[must_use]
    pub fn count(mut self, n: u64) -> Self {
        self.count = n;
        self
    }

    /// Inject on every `n`-th eligible operation.
    #[must_use]
    pub fn every(mut self, n: u64) -> Self {
        self.every = n.max(1);
        self
    }

    /// Sleep this long (latency rules).
    #[must_use]
    pub fn latency(mut self, d: Duration) -> Self {
        self.latency = Some(d);
        self
    }

    /// Restrict eligibility to keys/bodies containing `s`.
    #[must_use]
    pub fn key_contains(mut self, s: impl Into<String>) -> Self {
        self.key_contains = Some(s.into());
        self
    }

    /// Parses a compact rule spec: `site[:k=v,...]` where `site` is one of
    /// `disk-read`, `disk-append`, `disk-write`, `solver-panic`,
    /// `solver-latency`, and the keys are `after`, `count`, `every`, `ms`
    /// (latency) and `key` (substring predicate). Examples:
    /// `solver-panic:after=3,count=1`, `disk-append:after=5,count=10`,
    /// `solver-latency:every=20,ms=500`.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed spec.
    pub fn parse(spec: &str) -> Result<FaultRule, String> {
        let (site_name, params) = match spec.split_once(':') {
            Some((s, p)) => (s, p),
            None => (spec, ""),
        };
        let site = FaultSite::parse(site_name.trim())
            .ok_or_else(|| format!("unknown fault site '{}'", site_name.trim()))?;
        let mut rule = FaultRule::always(site);
        for pair in params.split(',').filter(|p| !p.trim().is_empty()) {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| format!("fault parameter '{pair}' is not key=value"))?;
            let (k, v) = (k.trim(), v.trim());
            let num = || {
                v.parse::<u64>()
                    .map_err(|_| format!("fault parameter '{k}={v}' is not a number"))
            };
            match k {
                "after" => rule.after = num()?,
                "count" => rule.count = num()?,
                "every" => rule.every = num()?.max(1),
                "ms" => rule.latency = Some(Duration::from_millis(num()?)),
                "key" => rule.key_contains = Some(v.to_string()),
                _ => return Err(format!("unknown fault parameter '{k}'")),
            }
        }
        if matches!(site, FaultSite::SolverLatency | FaultSite::ConnStall) && rule.latency.is_none()
        {
            return Err(format!("{} rules need ms=<millis>", site.name()));
        }
        Ok(rule)
    }
}

/// Per-rule live state: the immutable rule plus its eligibility/injection
/// counters (atomics, so probing never takes a lock).
#[derive(Debug)]
struct RuleState {
    rule: FaultRule,
    seen: AtomicU64,
    injected: AtomicU64,
}

impl RuleState {
    /// Records one eligible operation and says whether it injects.
    fn fire(&self) -> bool {
        let seen = self.seen.fetch_add(1, Ordering::Relaxed) + 1;
        if seen <= self.rule.after {
            return false;
        }
        if !(seen - self.rule.after - 1).is_multiple_of(self.rule.every) {
            return false;
        }
        // Claim an injection slot; back off when the budget is spent.
        let mut injected = self.injected.load(Ordering::Relaxed);
        loop {
            if injected >= self.rule.count {
                return false;
            }
            match self.injected.compare_exchange_weak(
                injected,
                injected + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => injected = now,
            }
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    rules: Vec<RuleState>,
}

/// A shared set of armed fault rules. The default plane is disarmed and
/// every probe is a single cheap check; clones share rule counters.
#[derive(Debug, Clone, Default)]
pub struct FaultPlane {
    inner: Arc<Inner>,
}

impl FaultPlane {
    /// A disarmed plane: no rule ever fires.
    pub fn disarmed() -> Self {
        Self::default()
    }

    /// A plane armed with `rules`.
    pub fn armed(rules: impl IntoIterator<Item = FaultRule>) -> Self {
        let rules = rules
            .into_iter()
            .map(|rule| RuleState {
                rule,
                seen: AtomicU64::new(0),
                injected: AtomicU64::new(0),
            })
            .collect();
        Self {
            inner: Arc::new(Inner { rules }),
        }
    }

    /// `true` when at least one rule is armed.
    pub fn is_armed(&self) -> bool {
        !self.inner.rules.is_empty()
    }

    /// Total injections performed across every rule and site so far.
    pub fn injected_total(&self) -> u64 {
        self.inner
            .rules
            .iter()
            .map(|r| r.injected.load(Ordering::Relaxed))
            .sum()
    }

    /// Total injections performed at `site` so far.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.inner
            .rules
            .iter()
            .filter(|r| r.rule.site == site)
            .map(|r| r.injected.load(Ordering::Relaxed))
            .sum()
    }

    fn fire(&self, site: FaultSite, key: &str) -> Option<&RuleState> {
        self.inner
            .rules
            .iter()
            .filter(|r| {
                r.rule.site == site
                    && r.rule
                        .key_contains
                        .as_deref()
                        .is_none_or(|s| key.contains(s))
            })
            .find(|r| r.fire())
    }

    /// Disk-site probe: returns the injected I/O error when a rule fires.
    ///
    /// # Errors
    ///
    /// The injected fault, as `io::ErrorKind::Other`.
    pub fn disk_gate(&self, site: FaultSite, key: &str) -> io::Result<()> {
        if self.fire(site, key).is_some() {
            return Err(io::Error::other(format!("injected fault: {}", site.name())));
        }
        Ok(())
    }

    /// Solver-panic probe: `true` when the worker should panic on this
    /// request body. The caller performs the actual `panic!` so the
    /// backtrace points at the worker.
    pub fn solver_panic(&self, body: &str) -> bool {
        self.fire(FaultSite::SolverPanic, body).is_some()
    }

    /// Solver-latency probe: the sleep to apply before solving this
    /// request body, if a rule fires.
    pub fn solver_latency(&self, body: &str) -> Option<Duration> {
        self.fire(FaultSite::SolverLatency, body)
            .and_then(|r| r.rule.latency)
    }

    /// Connection-drop probe: `true` when the HTTP frontend should sever
    /// this connection mid-response after answering `body`.
    pub fn conn_drop(&self, body: &str) -> bool {
        self.fire(FaultSite::ConnDrop, body).is_some()
    }

    /// Connection-stall probe: the sleep to apply before writing the
    /// response to `body`, if a rule fires.
    pub fn conn_stall(&self, body: &str) -> Option<Duration> {
        self.fire(FaultSite::ConnStall, body)
            .and_then(|r| r.rule.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_plane_never_fires() {
        let plane = FaultPlane::disarmed();
        assert!(!plane.is_armed());
        for _ in 0..100 {
            assert!(plane.disk_gate(FaultSite::DiskRead, "k").is_ok());
            assert!(!plane.solver_panic("body"));
            assert!(plane.solver_latency("body").is_none());
        }
    }

    #[test]
    fn after_count_every_window() {
        let plane = FaultPlane::armed([FaultRule::always(FaultSite::DiskAppend)
            .after(2)
            .count(3)
            .every(2)]);
        // Eligible ops 1..=10; skip 2, then every 2nd of the rest: ops
        // 3, 5, 7 inject (count stops the 4th at op 9).
        let fired: Vec<bool> = (0..10)
            .map(|_| plane.disk_gate(FaultSite::DiskAppend, "k").is_err())
            .collect();
        assert_eq!(
            fired,
            [false, false, true, false, true, false, true, false, false, false]
        );
        assert_eq!(plane.injected(FaultSite::DiskAppend), 3);
    }

    #[test]
    fn sites_are_independent() {
        let plane = FaultPlane::armed([FaultRule::always(FaultSite::DiskRead).count(1)]);
        assert!(plane.disk_gate(FaultSite::DiskAppend, "k").is_ok());
        assert!(plane.disk_gate(FaultSite::DiskWrite, "k").is_ok());
        assert!(plane.disk_gate(FaultSite::DiskRead, "k").is_err());
        assert!(
            plane.disk_gate(FaultSite::DiskRead, "k").is_ok(),
            "budget spent"
        );
    }

    #[test]
    fn key_predicate_restricts_eligibility() {
        let plane =
            FaultPlane::armed([FaultRule::always(FaultSite::SolverPanic).key_contains("magic")]);
        assert!(!plane.solver_panic("ordinary request"));
        assert!(plane.solver_panic("the magic word"));
    }

    #[test]
    fn latency_rule_reports_duration() {
        let plane = FaultPlane::armed([FaultRule::always(FaultSite::SolverLatency)
            .every(2)
            .latency(Duration::from_millis(7))]);
        assert_eq!(
            plane.solver_latency("x"),
            Some(Duration::from_millis(7)),
            "first eligible op fires (every=2 hits ops 1, 3, 5…)"
        );
        assert_eq!(plane.solver_latency("x"), None);
        assert_eq!(plane.solver_latency("x"), Some(Duration::from_millis(7)));
    }

    #[test]
    fn spec_parsing_round_trips() {
        let r = FaultRule::parse("solver-panic:after=3,count=1").unwrap();
        assert_eq!(r.site, FaultSite::SolverPanic);
        assert_eq!((r.after, r.count, r.every), (3, 1, 1));
        let r = FaultRule::parse("disk-append:after=5,count=10").unwrap();
        assert_eq!(r.site, FaultSite::DiskAppend);
        let r = FaultRule::parse("solver-latency:every=20,ms=500,key=dl75").unwrap();
        assert_eq!(r.latency, Some(Duration::from_millis(500)));
        assert_eq!(r.key_contains.as_deref(), Some("dl75"));
        let r = FaultRule::parse("disk-read").unwrap();
        assert_eq!((r.after, r.count, r.every), (0, u64::MAX, 1));

        assert!(FaultRule::parse("bogus-site").is_err());
        assert!(FaultRule::parse("disk-read:nope=1").is_err());
        assert!(FaultRule::parse("disk-read:after=x").is_err());
        assert!(FaultRule::parse("disk-read:after").is_err());
        assert!(
            FaultRule::parse("solver-latency:every=2").is_err(),
            "needs ms"
        );

        let r = FaultRule::parse("conn-drop:count=1,key=dl75").unwrap();
        assert_eq!(r.site, FaultSite::ConnDrop);
        assert_eq!(r.key_contains.as_deref(), Some("dl75"));
        let r = FaultRule::parse("conn-stall:ms=250").unwrap();
        assert_eq!(r.site, FaultSite::ConnStall);
        assert_eq!(r.latency, Some(Duration::from_millis(250)));
        assert!(FaultRule::parse("conn-stall:count=1").is_err(), "needs ms");
    }

    #[test]
    fn conn_sites_probe_like_the_others() {
        let plane = FaultPlane::armed([
            FaultRule::always(FaultSite::ConnDrop).count(1),
            FaultRule::always(FaultSite::ConnStall).latency(Duration::from_millis(9)),
        ]);
        assert!(plane.conn_drop("x"));
        assert!(!plane.conn_drop("x"), "budget spent");
        assert_eq!(plane.conn_stall("x"), Some(Duration::from_millis(9)));
        assert_eq!(plane.injected(FaultSite::ConnDrop), 1);
    }

    #[test]
    fn concurrent_firing_respects_the_budget() {
        let plane = FaultPlane::armed([FaultRule::always(FaultSite::DiskRead).count(10)]);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let plane = plane.clone();
            handles.push(std::thread::spawn(move || {
                (0..50)
                    .filter(|_| plane.disk_gate(FaultSite::DiskRead, "k").is_err())
                    .count()
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 10);
    }
}
