//! Runtime of the paper's algorithm on the paper's own workloads — one
//! bench per published table: Table 2/3 share the G3 run at d = 230, and
//! Table 4 covers both graphs over all published deadlines.

use batsched_battery::rv::RvModel;
use batsched_battery::units::Minutes;
use batsched_core::{schedule, search::diag_evaluate_windows, SchedulerConfig};
use batsched_taskgraph::paper::{
    g2, g3, G2_TABLE4_DEADLINES, G3_EXAMPLE_DEADLINE, G3_TABLE4_DEADLINES,
};
use batsched_taskgraph::topo::topological_order;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_table2_table3_full_run(c: &mut Criterion) {
    let g = g3();
    let cfg = SchedulerConfig::paper();
    c.bench_function("table2_table3_g3_full_run_d230", |b| {
        b.iter(|| black_box(schedule(&g, Minutes::new(G3_EXAMPLE_DEADLINE), &cfg).unwrap()))
    });
}

fn bench_table4_deadline_sweep(c: &mut Criterion) {
    let cfg = SchedulerConfig::paper();
    let mut group = c.benchmark_group("table4_full_run");
    let g2 = g2();
    for d in G2_TABLE4_DEADLINES {
        group.bench_with_input(BenchmarkId::new("g2", d), &d, |b, &d| {
            b.iter(|| black_box(schedule(&g2, Minutes::new(d), &cfg).unwrap()))
        });
    }
    let g3 = g3();
    for d in G3_TABLE4_DEADLINES {
        group.bench_with_input(BenchmarkId::new("g3", d), &d, |b, &d| {
            b.iter(|| black_box(schedule(&g3, Minutes::new(d), &cfg).unwrap()))
        });
    }
    group.finish();
}

fn bench_single_window_evaluation(c: &mut Criterion) {
    // The inner kernel of Fig. 1: one full EvaluateWindows sweep.
    let g = g3();
    let cfg = SchedulerConfig::paper();
    let model = RvModel::date05();
    let seq = topological_order(&g);
    c.bench_function("evaluate_windows_g3", |b| {
        b.iter(|| {
            black_box(
                diag_evaluate_windows(
                    &g,
                    &cfg,
                    Minutes::new(G3_EXAMPLE_DEADLINE),
                    &model,
                    &seq,
                )
                .unwrap(),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_table2_table3_full_run,
    bench_table4_deadline_sweep,
    bench_single_window_evaluation
);
criterion_main!(benches);
