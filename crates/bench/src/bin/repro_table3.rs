//! Reproduces **Table 3** of the paper: battery capacity σ (mA·min) and
//! schedule duration Δ (min) per window, per iteration, on G3 at a
//! 230-minute deadline — with the published numbers alongside.

#![forbid(unsafe_code)]

use batsched_battery::units::Minutes;
use batsched_bench::{published, Table};
use batsched_core::{schedule, SchedulerConfig};
use batsched_taskgraph::paper::{g3, G3_EXAMPLE_DEADLINE};

fn main() {
    println!("== Table 3: algorithm execution data per iteration on G3 (d = 230) ==\n");
    let g = g3();
    let sol = schedule(
        &g,
        Minutes::new(G3_EXAMPLE_DEADLINE),
        &SchedulerConfig::paper(),
    )
    .expect("G3 at 230 min is feasible");

    let m = g.point_count();
    let mut t = Table::new([
        "Seq", "Win 1:5", "Win 2:5", "Win 3:5", "Win 4:5", "Min σ", "Δ",
    ]);
    for (k, it) in sol.trace.iter().enumerate() {
        let mut cells = vec![format!("S{}", k + 1)];
        // Windows were evaluated narrow→wide; print wide→narrow as the paper.
        for label in ["1:5", "2:5", "3:5", "4:5"] {
            match it.windows.iter().find(|w| w.label(m) == label) {
                Some(w) => cells.push(format!("{:.0} ({:.1})", w.cost.value(), w.makespan.value())),
                None => cells.push("-".into()),
            }
        }
        let best = &it.windows[it.best_window];
        cells.push(format!("{:.0}", best.cost.value()));
        cells.push(format!("{:.1}", best.makespan.value()));
        t.row(cells);
        t.row([
            format!("S{}w", k + 1),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            format!("{:.0}", it.weighted_cost.value()),
            format!("{:.1}", it.weighted_makespan.value()),
        ]);
    }
    print!("{}", t.render());

    println!("\npublished S1 row     : 17169 (229.8)  17837 (228.4)  17038 (227.1)  16353 (228.3)");
    println!("published min σ curve: 16353 → 14725 → 13737 → 13737 (terminates)");
    let ours: Vec<String> = sol
        .trace
        .iter()
        .map(|it| format!("{:.0}", it.min_cost.value()))
        .collect();
    println!("our min σ curve      : {}", ours.join(" → "));

    // Exactness check on the one fully pinned-down cell.
    let win45 = sol.trace[0]
        .windows
        .iter()
        .find(|w| w.label(m) == "4:5")
        .expect("window 4:5 evaluated");
    let (pub_sigma, pub_delta) = published::TABLE3_S1[3];
    println!(
        "\nS1 / Win 4:5: ours σ={:.0} Δ={:.1} vs published σ={:.0} Δ={:.1}  -> {}",
        win45.cost.value(),
        win45.makespan.value(),
        pub_sigma,
        pub_delta,
        if (win45.cost.value() - pub_sigma).abs() < 1.0 {
            "EXACT"
        } else {
            "DIFFERS"
        }
    );
    let final_pub = published::TABLE3_MIN_SIGMA[2];
    println!(
        "final σ: ours {:.0} vs published {:.0} ({})",
        sol.cost.value(),
        final_pub,
        batsched_bench::pct(sol.cost.value(), final_pub)
    );
}
