//! Thin binary wrapper around [`batsched_cli::run`].

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::new();
    match batsched_cli::run(&args, &mut out) {
        Ok(()) => print!("{out}"),
        Err(e) => {
            print!("{out}");
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
