//! Offline stand-in for the `proptest` crate.
//!
//! Supports the surface this workspace's property tests use: the
//! `proptest!` macro with an optional `#![proptest_config(...)]` header,
//! range and tuple strategies, `prop::collection::vec`, `any::<T>()`,
//! `prop_map`, and the `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Unlike real proptest there is no shrinking: failures report the panic
//! from the failing case directly. Generation is deterministic — each test
//! derives its RNG seed from the test's name, so failures reproduce.

use rand::rngs::StdRng;
use rand::Rng as _;
use std::ops::Range;

pub use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// Derives a stable 64-bit seed from a test name.
pub fn seed_of(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategy!(usize, u8, u16, u32, u64, f32, f64);

impl Strategy for Range<i32> {
    type Value = i32;

    fn generate(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end as i64 - self.start as i64) as u64;
        let off = rng.gen_range(0..span);
        (self.start as i64 + off as i64) as i32
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(0..=u64::MAX)
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(0..=u32::MAX)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_bool(0.5)
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Sub-strategies namespaced like the real crate (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng as _;

        /// Accepted size specifications for [`vec`].
        pub struct SizeRange(std::ops::Range<usize>);

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                Self(r)
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self(n..n + 1)
            }
        }

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.gen_range(self.size.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Generates vectors of `element` values.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into().0,
            }
        }
    }
}

/// Everything a property-test file normally imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

/// Asserts inside a property; on failure the failing case panics with the
/// formatted message (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// The `proptest!` block: wraps each contained function in a loop drawing
/// its arguments from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal recursion for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = <$crate::TestRng as $crate::SeedableRng>::seed_from_u64(
                $crate::seed_of(concat!(module_path!(), "::", stringify!($name))),
            );
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&$strat, &mut __rng);)+
                // Bodies may `return Ok(())` to skip a case, like real
                // proptest; assertions panic directly (no shrinking).
                let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!("property rejected the case: {__e}");
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}
