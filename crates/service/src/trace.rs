//! Request tracing: trace ids, per-stage timing accumulation, and the
//! structured span emitted once per completed request.
//!
//! Every request carries a trace id — the client's `X-Request-Id` when it
//! supplies a sane one, otherwise an id generated from the request body's
//! content hash plus a process-wide monotonic sequence (so replays of the
//! same document are correlated by prefix but still distinguishable). The
//! id is echoed on the response, including typed errors, and stamps the
//! span line.
//!
//! A [`RequestTrace`] rides on every [`Reply`]: the worker fills in stage
//! durations as the request moves through parse → canonical hash → cache
//! probe → disk probe → solve → serialise, plus queue wait and the solver
//! phase profile ([`batsched_core::Prof`]) delta for this request. The
//! frontend that owns the connection adds what only it can see — read and
//! write time, end-to-end latency — and renders the whole thing as one
//! [`Span`] JSON line.

use crate::logfmt::Level;
use crate::service::{Disposition, Reply};
use crate::wire;
use crate::wire_bin::WireFormat;
use batsched_core::Prof;
use serde::Serialize;
use std::time::{SystemTime, UNIX_EPOCH};

/// Maximum accepted length of a client-supplied `X-Request-Id`.
pub const MAX_CLIENT_ID_LEN: usize = 128;

/// Stage timings and solver attribution accumulated inside the service
/// while answering one request. All durations in microseconds; a stage
/// that never ran stays 0.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RequestTrace {
    /// Queue wait: submission to worker pickup.
    pub queue_us: u64,
    /// Request-document parse.
    pub parse_us: u64,
    /// Canonical content hash of the parsed request.
    pub hash_us: u64,
    /// Memory-tier probes (alias fast path + canonical lookup).
    pub cache_us: u64,
    /// Disk-tier probe / append.
    pub disk_us: u64,
    /// The solver proper.
    pub solve_us: u64,
    /// Response serialisation + cache/disk population.
    pub serialize_us: u64,
    /// Worker thread that answered; `None` when no worker was involved
    /// (overload rejection, call-layer timeout).
    pub worker: Option<u32>,
    /// `true` when the answer came from the disk tier.
    pub served_from_disk: bool,
    /// `true` when a fault-injection rule fired while answering.
    pub injected: bool,
    /// Which wire format the request document arrived in.
    pub format: WireFormat,
    /// Solver phase counters attributable to this request.
    pub prof: Prof,
}

/// The outcome label for a reply: `hit`, `disk_hit`, `solved`,
/// `client_error`, `overloaded`, `timeout` or `internal`.
pub fn outcome(disposition: Disposition, served_from_disk: bool) -> &'static str {
    match disposition {
        Disposition::Ok { cached: true } => {
            if served_from_disk {
                "disk_hit"
            } else {
                "hit"
            }
        }
        Disposition::Ok { cached: false } => "solved",
        Disposition::ClientError => "client_error",
        Disposition::Overloaded => "overloaded",
        Disposition::Timeout => "timeout",
        Disposition::Internal => "internal",
    }
}

/// The HTTP status a disposition maps to (shared by the HTTP frontend and
/// span rendering so the two can never disagree).
pub fn status_code(disposition: Disposition) -> u16 {
    match disposition {
        Disposition::Ok { .. } => 200,
        Disposition::ClientError => 400,
        Disposition::Overloaded => 503,
        Disposition::Timeout => 504,
        Disposition::Internal => 500,
    }
}

/// Generates a trace id for a request without a client-supplied one:
/// the raw body's FNV-1a hash (correlates replays of the same document)
/// joined with a process-wide monotonic sequence (keeps every request
/// distinct, including pipelined duplicates on one connection).
pub fn make_trace_id(body: &[u8], seq: u64) -> String {
    format!("{:016x}-{:x}", wire::fnv1a64(body), seq)
}

/// Validates a client-supplied `X-Request-Id`: trimmed, non-empty, at most
/// [`MAX_CLIENT_ID_LEN`] bytes, graphic ASCII only (no spaces, no control
/// bytes — the id is echoed into a response header and a JSON log line).
pub fn sanitize_client_id(raw: &str) -> Option<String> {
    let t = raw.trim();
    if t.is_empty() || t.len() > MAX_CLIENT_ID_LEN {
        return None;
    }
    if !t.bytes().all(|b| b.is_ascii_graphic()) {
        return None;
    }
    Some(t.to_string())
}

/// One completed request, rendered as a single JSON log line.
///
/// Invariant: `read_us + queue_us + parse_us + hash_us + cache_us +
/// disk_us + solve_us + serialize_us + write_us + other_us == total_us`
/// (`other_us` absorbs what no stage claims — channel hops, scheduling —
/// so the stage breakdown always reconciles with the end-to-end latency).
#[derive(Debug, Clone, Serialize)]
pub struct Span {
    /// Milliseconds since the Unix epoch at emission.
    pub ts_ms: u64,
    /// Severity (`info` for served requests, `warn`/`error` for failures).
    pub level: &'static str,
    /// The request's trace id.
    pub trace_id: String,
    /// Outcome label (see [`outcome`]).
    pub outcome: &'static str,
    /// HTTP status the disposition maps to.
    pub status: u16,
    /// Worker thread that answered, or -1 when none was involved.
    pub worker: i64,
    /// This process's fleet slot ([`crate::service::ServiceConfig::fleet_worker`]),
    /// or -1 for a standalone daemon — lets fleet-wide log aggregation
    /// attribute every span to the worker process that emitted it.
    pub fleet_worker: i64,
    /// End-to-end latency as observed by the frontend.
    pub total_us: u64,
    /// Reading the request off the connection.
    pub read_us: u64,
    /// Queue wait.
    pub queue_us: u64,
    /// Request parse.
    pub parse_us: u64,
    /// Canonical content hash.
    pub hash_us: u64,
    /// Memory-tier cache probes.
    pub cache_us: u64,
    /// Disk-tier probe / append.
    pub disk_us: u64,
    /// The solver proper.
    pub solve_us: u64,
    /// Response serialisation + cache population.
    pub serialize_us: u64,
    /// Writing the response to the connection.
    pub write_us: u64,
    /// Unattributed remainder (channel hops, thread scheduling).
    pub other_us: u64,
    /// Wire format the request arrived in (`json` or `binary`).
    pub wire_format: &'static str,
    /// A fault-injection rule fired while answering.
    pub injected: bool,
    /// Solver phase counters for this request.
    pub prof: Prof,
}

impl Span {
    /// Assembles the span for one reply. `read_us`/`write_us` are the
    /// frontend's connection I/O timings (0 for non-HTTP frontends);
    /// `total_us` is the frontend's end-to-end measurement and bounds the
    /// stage sum via `other_us`.
    pub fn new(
        trace_id: String,
        reply: &Reply,
        read_us: u64,
        write_us: u64,
        total_us: u64,
    ) -> Span {
        let t = &reply.trace;
        let staged = read_us
            + t.queue_us
            + t.parse_us
            + t.hash_us
            + t.cache_us
            + t.disk_us
            + t.solve_us
            + t.serialize_us
            + write_us;
        let out = outcome(reply.disposition, t.served_from_disk);
        Span {
            ts_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map_or(0, |d| d.as_millis() as u64),
            level: match reply.disposition {
                Disposition::Ok { .. } => "info",
                Disposition::ClientError | Disposition::Overloaded | Disposition::Timeout => "warn",
                Disposition::Internal => "error",
            },
            trace_id,
            outcome: out,
            status: status_code(reply.disposition),
            worker: t.worker.map_or(-1, |w| w as i64),
            fleet_worker: -1,
            total_us,
            read_us,
            queue_us: t.queue_us,
            parse_us: t.parse_us,
            hash_us: t.hash_us,
            cache_us: t.cache_us,
            disk_us: t.disk_us,
            solve_us: t.solve_us,
            serialize_us: t.serialize_us,
            write_us,
            other_us: total_us.saturating_sub(staged),
            wire_format: t.format.as_str(),
            injected: t.injected,
            prof: t.prof,
        }
    }

    /// Stamps the emitting process's fleet slot (`None` leaves the
    /// standalone sentinel -1).
    #[must_use]
    pub fn with_fleet_worker(mut self, slot: Option<u32>) -> Span {
        if let Some(slot) = slot {
            self.fleet_worker = i64::from(slot);
        }
        self
    }

    /// The severity this span logs at.
    pub fn severity(&self) -> Level {
        match self.level {
            "error" => Level::Error,
            "warn" => Level::Warn,
            _ => Level::Info,
        }
    }

    /// The span as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        // lint:allow(panic-path): serialising the span struct (owned strings
        // and numbers, no maps) cannot fail.
        serde_json::to_string(self).expect("spans serialise")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reply(disposition: Disposition, trace: RequestTrace) -> Reply {
        Reply {
            body: String::new(),
            disposition,
            micros: 0,
            trace,
        }
    }

    #[test]
    fn outcome_labels() {
        assert_eq!(outcome(Disposition::Ok { cached: true }, false), "hit");
        assert_eq!(outcome(Disposition::Ok { cached: true }, true), "disk_hit");
        assert_eq!(outcome(Disposition::Ok { cached: false }, false), "solved");
        assert_eq!(outcome(Disposition::Timeout, false), "timeout");
        assert_eq!(outcome(Disposition::Internal, false), "internal");
    }

    #[test]
    fn trace_ids_are_distinct_per_sequence_and_correlated_per_body() {
        let a0 = make_trace_id(b"body-a", 0);
        let a1 = make_trace_id(b"body-a", 1);
        let b0 = make_trace_id(b"body-b", 0);
        assert_ne!(a0, a1);
        assert_eq!(a0.split('-').next(), a1.split('-').next());
        assert_ne!(a0.split('-').next(), b0.split('-').next());
    }

    #[test]
    fn client_id_sanitisation() {
        assert_eq!(sanitize_client_id("  abc-123  "), Some("abc-123".into()));
        assert_eq!(sanitize_client_id(""), None);
        assert_eq!(sanitize_client_id("   "), None);
        assert_eq!(sanitize_client_id("has space"), None);
        assert_eq!(sanitize_client_id("ctrl\x07"), None);
        assert_eq!(sanitize_client_id(&"x".repeat(129)), None);
        assert_eq!(sanitize_client_id(&"x".repeat(128)), Some("x".repeat(128)));
    }

    #[test]
    fn span_stage_sum_reconciles_with_total() {
        let trace = RequestTrace {
            queue_us: 10,
            parse_us: 20,
            hash_us: 5,
            cache_us: 3,
            disk_us: 0,
            solve_us: 900,
            serialize_us: 40,
            worker: Some(1),
            ..RequestTrace::default()
        };
        let span = Span::new(
            "t-1".into(),
            &reply(Disposition::Ok { cached: false }, trace),
            7,
            9,
            1100,
        );
        let staged = span.read_us
            + span.queue_us
            + span.parse_us
            + span.hash_us
            + span.cache_us
            + span.disk_us
            + span.solve_us
            + span.serialize_us
            + span.write_us;
        assert_eq!(staged + span.other_us, span.total_us);
        assert_eq!(span.other_us, 1100 - 994);
        assert_eq!(span.wire_format, "json");
        assert!(span.to_json().contains("\"wire_format\":\"json\""));
        assert_eq!(span.outcome, "solved");
        assert_eq!(span.status, 200);
        assert_eq!(span.worker, 1);
        assert_eq!(span.fleet_worker, -1, "standalone daemon");
        assert_eq!(span.clone().with_fleet_worker(None).fleet_worker, -1);
        assert_eq!(span.clone().with_fleet_worker(Some(2)).fleet_worker, 2);
        let json = span.to_json();
        assert!(json.contains("\"outcome\":\"solved\""), "{json}");
        assert!(json.contains("\"trace_id\":\"t-1\""), "{json}");
        assert!(json.contains("\"prof\":{"), "{json}");
    }

    #[test]
    fn span_levels_follow_disposition() {
        let mk = |d| Span::new("t".into(), &reply(d, RequestTrace::default()), 0, 0, 0);
        assert_eq!(mk(Disposition::Ok { cached: true }).severity(), Level::Info);
        assert_eq!(mk(Disposition::Timeout).severity(), Level::Warn);
        assert_eq!(mk(Disposition::Internal).severity(), Level::Error);
    }
}
