//! Runtime of the paper's algorithm on the paper's own workloads — one
//! bench per published table: Table 2/3 share the G3 run at d = 230, and
//! Table 4 covers both graphs over all published deadlines.

use batsched_battery::eval::SigmaScratch;
use batsched_battery::rv::RvModel;
use batsched_battery::units::Minutes;
use batsched_bench::workloads::synthetic_n50_m8;
use batsched_core::schedule::{entry_id, graph_evaluator};
use batsched_core::{profile_of, schedule, search::diag_evaluate_windows, SchedulerConfig};
use batsched_taskgraph::analysis::{max_makespan, min_makespan};
use batsched_taskgraph::paper::{
    g2, g3, G2_TABLE4_DEADLINES, G3_EXAMPLE_DEADLINE, G3_TABLE4_DEADLINES,
};
use batsched_taskgraph::topo::topological_order;
use batsched_taskgraph::PointId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_table2_table3_full_run(c: &mut Criterion) {
    let g = g3();
    let cfg = SchedulerConfig::paper();
    c.bench_function("table2_table3_g3_full_run_d230", |b| {
        b.iter(|| black_box(schedule(&g, Minutes::new(G3_EXAMPLE_DEADLINE), &cfg).unwrap()))
    });
}

fn bench_table4_deadline_sweep(c: &mut Criterion) {
    let cfg = SchedulerConfig::paper();
    let mut group = c.benchmark_group("table4_full_run");
    let g2 = g2();
    for d in G2_TABLE4_DEADLINES {
        group.bench_with_input(BenchmarkId::new("g2", d), &d, |b, &d| {
            b.iter(|| black_box(schedule(&g2, Minutes::new(d), &cfg).unwrap()))
        });
    }
    let g3 = g3();
    for d in G3_TABLE4_DEADLINES {
        group.bench_with_input(BenchmarkId::new("g3", d), &d, |b, &d| {
            b.iter(|| black_box(schedule(&g3, Minutes::new(d), &cfg).unwrap()))
        });
    }
    group.finish();
}

fn bench_single_window_evaluation(c: &mut Criterion) {
    // The inner kernel of Fig. 1: one full EvaluateWindows sweep.
    let g = g3();
    let cfg = SchedulerConfig::paper();
    let model = RvModel::date05();
    let seq = topological_order(&g);
    c.bench_function("evaluate_windows_g3", |b| {
        b.iter(|| {
            black_box(
                diag_evaluate_windows(&g, &cfg, Minutes::new(G3_EXAMPLE_DEADLINE), &model, &seq)
                    .unwrap(),
            )
        })
    });
}

fn bench_synthetic_n50_m8(c: &mut Criterion) {
    let g = synthetic_n50_m8();
    let cfg = SchedulerConfig::paper();
    let model = RvModel::date05();
    let lo = min_makespan(&g).value();
    let hi = max_makespan(&g).value();
    let d = Minutes::new(lo + (hi - lo) * 0.7);

    let order = topological_order(&g);
    let m = g.point_count();
    let assignment: Vec<PointId> = (0..g.task_count()).map(|t| PointId(t % m)).collect();
    let profile = profile_of(&g, &order, &assignment);
    let end = profile.end();
    let eval = graph_evaluator(&g, &model);
    let entries: Vec<u32> = order
        .iter()
        .map(|&t| entry_id(t, m, assignment[t.index()]))
        .collect();

    let mut group = c.benchmark_group("synthetic_n50_m8");
    group.sample_size(20);
    group.bench_function("sigma_naive", |b| {
        b.iter(|| black_box(model.sigma(black_box(&profile), end)))
    });
    let mut scratch = SigmaScratch::new();
    group.bench_function("sigma_engine_full", |b| {
        b.iter(|| {
            scratch.invalidate();
            black_box(eval.sigma_seq(black_box(&entries), &mut scratch))
        })
    });
    group.bench_function("full_run", |b| {
        b.iter(|| black_box(schedule(&g, d, &cfg).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table2_table3_full_run,
    bench_table4_deadline_sweep,
    bench_single_window_evaluation,
    bench_synthetic_n50_m8
);
criterion_main!(benches);
