//! # batsched-bench
//!
//! The reproduction harness for the DATE'05 paper: one binary per published
//! table/figure (`repro_table1` … `repro_figure5`, plus `repro_ablation`)
//! and criterion runtime benches. This library holds the shared plumbing:
//! simple fixed-width table rendering and the published reference numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

/// Reference values printed in the paper, used for side-by-side reports.
pub mod published {
    /// Table 3: per-iteration minimum battery capacity (mA·min) on G3 at
    /// d = 230 (sequences S1–S4).
    pub const TABLE3_MIN_SIGMA: [f64; 4] = [16353.0, 14725.0, 13737.0, 13737.0];

    /// Table 3, S1 row: (σ, Δ) per window 1:5 … 4:5.
    pub const TABLE3_S1: [(f64, f64); 4] = [
        (17169.0, 229.8),
        (17837.0, 228.4),
        (17038.0, 227.1),
        (16353.0, 228.3),
    ];

    /// Table 4: our algorithm / the Rakhmatov-DP baseline on G2 at
    /// deadlines 55/75/95 min.
    pub const TABLE4_G2: [(f64, f64, f64); 3] = [
        (55.0, 30913.0, 35739.0),
        (75.0, 13751.0, 13885.0),
        (95.0, 7961.0, 8517.0),
    ];

    /// Table 4: our algorithm / the Rakhmatov-DP baseline on G3 at
    /// deadlines 100/150/230 min.
    pub const TABLE4_G3: [(f64, f64, f64); 3] = [
        (100.0, 57429.0, 68120.0),
        (150.0, 41801.0, 48650.0),
        (230.0, 13737.0, 22686.0),
    ];
}

/// Minimal fixed-width table printer (no dependency needed).
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (short rows are padded with empty cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut width = vec![0usize; cols];
        fn cell(r: &[String], c: usize) -> &str {
            r.get(c).map(String::as_str).unwrap_or("")
        }
        for r in std::iter::once(&self.header).chain(self.rows.iter()) {
            for (c, w) in width.iter_mut().enumerate() {
                *w = (*w).max(cell(r, c).chars().count());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, r: &[String]| {
            for (c, w) in width.iter().enumerate() {
                let _ = write!(out, "{:<w$}  ", cell(r, c), w = w);
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let rule: usize = width.iter().sum::<usize>() + 2 * width.len().saturating_sub(1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for r in &self.rows {
            emit(&mut out, r);
        }
        out
    }
}

/// Formats a relative deviation as `+x.x%`.
pub fn pct(ours: f64, reference: f64) -> String {
    if reference == 0.0 {
        return "n/a".into();
    }
    format!("{:+.1}%", (ours - reference) / reference * 100.0)
}

/// Shared synthetic workloads, so benches and the perf-trajectory harness
/// measure the exact same instances.
pub mod workloads {
    use batsched_taskgraph::synth::{layered, Rounding, ScalingScheme, TaskParams};
    use batsched_taskgraph::TaskGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Seed of [`synthetic_n50_m8`].
    pub const SYNTH_N50_M8_SEED: u64 = 0xBE7C_0DE5;

    /// The synthetic n=50, m=8 layered instance used by both the criterion
    /// `scheduler` bench and `repro_bench_json` — one definition, so the
    /// recorded `BENCH_scheduler.json` baseline and the criterion numbers
    /// stay comparable.
    pub fn synthetic_n50_m8() -> TaskGraph {
        let m = 8usize;
        let factors: Vec<f64> = (0..m)
            .map(|j| 1.0 - 0.67 * j as f64 / (m - 1) as f64)
            .collect();
        let params = TaskParams {
            current_range: (100.0, 900.0),
            duration_range: (2.0, 12.0),
            factors,
            scheme: ScalingScheme::ReversedDuration,
            rounding: Rounding::PAPER,
        };
        let mut rng = StdRng::seed_from_u64(SYNTH_N50_M8_SEED);
        layered(10, 5, 0.35, &params, &mut rng).expect("valid generator config")
    }

    /// The n-scaling instance family (m = 8, width-5 layers, seed derived
    /// from [`SYNTH_N50_M8_SEED`] and `n`) shared by `repro_bench_json`'s
    /// `sweep_scaling` section and `loadgen`'s scaling scenario, so the
    /// kernel-level growth exponent and the service-level latency envelope
    /// are measured on the same graphs. `n` must be a multiple of 5.
    pub fn synthetic_scaling(n: usize) -> TaskGraph {
        assert!(
            n >= 10 && n.is_multiple_of(5),
            "scaling instances are width-5 layered"
        );
        let m = 8usize;
        let params = TaskParams {
            current_range: (100.0, 900.0),
            duration_range: (2.0, 12.0),
            factors: (0..m)
                .map(|j| 1.0 - 0.67 * j as f64 / (m - 1) as f64)
                .collect(),
            scheme: ScalingScheme::ReversedDuration,
            rounding: Rounding::PAPER,
        };
        let mut rng = StdRng::seed_from_u64(SYNTH_N50_M8_SEED ^ n as u64);
        layered(n / 5, 5, 0.35, &params, &mut rng).expect("valid generator config")
    }
}

/// Least-squares slope of `ln(y)` against `ln(x)` — the fitted growth
/// exponent of a runtime series, used by the `sweep_scaling` perf gate.
pub fn fitted_exponent(points: &[(f64, f64)]) -> f64 {
    let k = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let (lx, ly) = (x.ln(), y.ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (k * sxy - sx * sy) / (k * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["a", "bbbb"]);
        t.row(["xx", "y"]).row(["1", "22222"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a   "));
        assert!(lines[1].starts_with("---"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(110.0, 100.0), "+10.0%");
        assert_eq!(pct(95.0, 100.0), "-5.0%");
        assert_eq!(pct(1.0, 0.0), "n/a");
    }
}
