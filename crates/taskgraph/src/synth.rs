//! Synthetic task-graph generation.
//!
//! Two ingredients, matching how the paper built its workloads:
//!
//! 1. **Design-point synthesis from voltage-scaling factors** (§4.2 / §5):
//!    given a task's base current and base duration plus a descending factor
//!    list `s`, currents scale with `s³` (dynamic power ∝ V² and frequency
//!    ∝ V give charge/current ∝ V³ at fixed work) and durations stretch as
//!    the voltage drops. The paper uses two variants, both provided:
//!    [`ScalingScheme::InverseDuration`] (its G2) and
//!    [`ScalingScheme::ReversedDuration`] (its G3).
//! 2. **Topology generators**: fork-join (the G3 family, citing Kwok &
//!    Ahmad's multiprocessor benchmarks), chains, diamonds, layered random
//!    DAGs and series-parallel graphs, all seeded and deterministic.

use crate::design_point::DesignPoint;
use crate::graph::{TaskGraph, TaskGraphError, TaskId};
use batsched_battery::units::{MilliAmps, Minutes, Volts};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How durations are derived from the scaling factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingScheme {
    /// `D_j = d_base / s_j` with `d_base` the duration at the *last* factor
    /// (the paper's G2: "durations … inversely proportional to the scaling
    /// factor with respect to V4"). Factors are then all `>= 1`, e.g.
    /// `[2.5, 5/3, 1.25, 1]`.
    InverseDuration,
    /// `D_j = d_base · s_{m+1−j}` with `d_base` the *worst-case* duration
    /// (at the last design point). This is the rule that reproduces the
    /// paper's Table 1 exactly (its G3, factors `[1, .85, .68, .51, .33]`);
    /// note it is *not* the same curve as `InverseDuration`.
    ReversedDuration,
}

/// Decimal rounding applied to synthesised values, mirroring the paper's
/// tables (currents to whole mA, durations to 0.1 min).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rounding {
    /// Decimal places kept for currents (`None` = exact).
    pub current_decimals: Option<u32>,
    /// Decimal places kept for durations (`None` = exact).
    pub duration_decimals: Option<u32>,
}

impl Rounding {
    /// The paper's convention: integer mA, 0.1-minute durations.
    pub const PAPER: Self = Self {
        current_decimals: Some(0),
        duration_decimals: Some(1),
    };

    /// No rounding at all.
    pub const EXACT: Self = Self {
        current_decimals: None,
        duration_decimals: None,
    };

    fn apply(x: f64, decimals: Option<u32>) -> f64 {
        match decimals {
            None => x,
            Some(d) => {
                let k = 10f64.powi(d as i32);
                (x * k).round() / k
            }
        }
    }
}

/// Errors from design-point synthesis.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthError {
    /// The factor list was empty.
    NoFactors,
    /// A factor was non-positive or non-finite.
    InvalidFactor {
        /// The offending factor.
        value: f64,
    },
    /// Factors must be strictly decreasing (fastest first).
    NonDecreasingFactors,
    /// Base current/duration must be positive and finite.
    InvalidBase,
    /// The generated graph failed validation (should not happen; wrapped
    /// for completeness).
    Graph(TaskGraphError),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoFactors => write!(f, "scaling factor list is empty"),
            Self::InvalidFactor { value } => write!(f, "scaling factor {value} is not positive"),
            Self::NonDecreasingFactors => {
                write!(f, "scaling factors must be strictly decreasing")
            }
            Self::InvalidBase => write!(f, "base current/duration must be positive and finite"),
            Self::Graph(e) => write!(f, "generated graph failed validation: {e}"),
        }
    }
}

impl std::error::Error for SynthError {}

impl From<TaskGraphError> for SynthError {
    fn from(e: TaskGraphError) -> Self {
        Self::Graph(e)
    }
}

fn check_factors(factors: &[f64]) -> Result<(), SynthError> {
    if factors.is_empty() {
        return Err(SynthError::NoFactors);
    }
    for &s in factors {
        if !(s.is_finite() && s > 0.0) {
            return Err(SynthError::InvalidFactor { value: s });
        }
    }
    if factors.windows(2).any(|w| w[0] <= w[1]) {
        return Err(SynthError::NonDecreasingFactors);
    }
    Ok(())
}

/// Synthesises the full design-point row of one task.
///
/// `i_base` is the current at the **first** (fastest) design point;
/// `d_base` is the duration anchor — at the *last* design point for both
/// schemes (see [`ScalingScheme`]). Voltage of point `j` is `s_j`
/// (normalised).
///
/// # Errors
///
/// See [`SynthError`].
pub fn synthesize_points(
    i_base: f64,
    d_base: f64,
    factors: &[f64],
    scheme: ScalingScheme,
    rounding: Rounding,
) -> Result<Vec<DesignPoint>, SynthError> {
    check_factors(factors)?;
    if !(i_base.is_finite() && i_base > 0.0 && d_base.is_finite() && d_base > 0.0) {
        return Err(SynthError::InvalidBase);
    }
    let m = factors.len();
    let s1 = factors[0];
    let mut points = Vec::with_capacity(m);
    for (j, &s) in factors.iter().enumerate() {
        // Currents scale with the cube of the factor relative to the fastest.
        let i = i_base * (s / s1).powi(3);
        let d = match scheme {
            ScalingScheme::InverseDuration => d_base / (s / factors[m - 1]),
            ScalingScheme::ReversedDuration => d_base * (factors[m - 1 - j] / s1),
        };
        points.push(DesignPoint::with_voltage(
            MilliAmps::new(Rounding::apply(i, rounding.current_decimals)),
            Minutes::new(Rounding::apply(d, rounding.duration_decimals)),
            Volts::new(s),
        ));
    }
    Ok(points)
}

/// Ranges the random generators draw task bases from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskParams {
    /// Base (fastest-point) current range in mA.
    pub current_range: (f64, f64),
    /// Base duration range in minutes (anchor per the scheme).
    pub duration_range: (f64, f64),
    /// Scaling factors, fastest first, strictly decreasing.
    pub factors: Vec<f64>,
    /// Duration derivation rule.
    pub scheme: ScalingScheme,
    /// Value rounding.
    pub rounding: Rounding,
}

impl Default for TaskParams {
    /// G3-flavoured defaults: 5 design points, paper factors and rounding.
    fn default() -> Self {
        Self {
            current_range: (300.0, 1000.0),
            duration_range: (8.0, 35.0),
            factors: vec![1.0, 0.85, 0.68, 0.51, 0.33],
            scheme: ScalingScheme::ReversedDuration,
            rounding: Rounding::PAPER,
        }
    }
}

impl TaskParams {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Vec<DesignPoint>, SynthError> {
        let i = rng.gen_range(self.current_range.0..=self.current_range.1);
        let d = rng.gen_range(self.duration_range.0..=self.duration_range.1);
        synthesize_points(i, d, &self.factors, self.scheme, self.rounding)
    }
}

/// A linear chain `T1 → T2 → … → Tn`.
pub fn chain<R: Rng + ?Sized>(
    n: usize,
    params: &TaskParams,
    rng: &mut R,
) -> Result<TaskGraph, SynthError> {
    let mut b = TaskGraph::builder();
    let mut prev: Option<TaskId> = None;
    for i in 0..n.max(1) {
        let t = b.task(format!("T{}", i + 1), params.sample(rng)?);
        if let Some(p) = prev {
            b.edge(p, t);
        }
        prev = Some(t);
    }
    Ok(b.build()?)
}

/// Fork-join graph: a source forks into `width` parallel tasks which join,
/// repeated once per entry of `widths`. `fork_join(&[4])` is a diamond of
/// width 4; the paper's G3 belongs to this family.
pub fn fork_join<R: Rng + ?Sized>(
    widths: &[usize],
    params: &TaskParams,
    rng: &mut R,
) -> Result<TaskGraph, SynthError> {
    let mut b = TaskGraph::builder();
    let mut counter = 0usize;
    let name = |counter: &mut usize| {
        *counter += 1;
        format!("T{counter}")
    };
    let mut tail = b.task(name(&mut counter), params.sample(rng)?);
    for &w in widths {
        let mut branch_ids = Vec::with_capacity(w.max(1));
        for _ in 0..w.max(1) {
            let t = b.task(name(&mut counter), params.sample(rng)?);
            b.edge(tail, t);
            branch_ids.push(t);
        }
        let join = b.task(name(&mut counter), params.sample(rng)?);
        for t in branch_ids {
            b.edge(t, join);
        }
        tail = join;
    }
    Ok(b.build()?)
}

/// Layered random DAG: `layers × width` tasks; each task in layer `k > 0`
/// gets at least one parent from layer `k−1` and further parents with
/// probability `edge_prob`.
pub fn layered<R: Rng + ?Sized>(
    layers: usize,
    width: usize,
    edge_prob: f64,
    params: &TaskParams,
    rng: &mut R,
) -> Result<TaskGraph, SynthError> {
    let layers = layers.max(1);
    let width = width.max(1);
    let mut b = TaskGraph::builder();
    let mut prev_layer: Vec<TaskId> = Vec::new();
    let mut counter = 0usize;
    for layer in 0..layers {
        let mut this_layer = Vec::with_capacity(width);
        for _ in 0..width {
            counter += 1;
            let t = b.task(format!("T{counter}"), params.sample(rng)?);
            if layer > 0 {
                let forced = prev_layer[rng.gen_range(0..prev_layer.len())];
                b.edge(forced, t);
                for &p in &prev_layer {
                    if p != forced && rng.gen_bool(edge_prob.clamp(0.0, 1.0)) {
                        b.edge(p, t);
                    }
                }
            }
            this_layer.push(t);
        }
        prev_layer = this_layer;
    }
    Ok(b.build()?)
}

/// Erdős–Rényi-style random DAG on `n` tasks: edge `i → j` (for `i < j` in a
/// random labelling) with probability `edge_prob`.
pub fn random_dag<R: Rng + ?Sized>(
    n: usize,
    edge_prob: f64,
    params: &TaskParams,
    rng: &mut R,
) -> Result<TaskGraph, SynthError> {
    let n = n.max(1);
    let mut b = TaskGraph::builder();
    let mut ids: Vec<TaskId> = Vec::with_capacity(n);
    for i in 0..n {
        ids.push(b.task(format!("T{}", i + 1), params.sample(rng)?));
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(edge_prob.clamp(0.0, 1.0)) {
                b.edge(ids[i], ids[j]);
            }
        }
    }
    Ok(b.build()?)
}

/// Series-parallel graph built by recursive composition to the given
/// `depth`: each level either chains two sub-graphs or runs them in
/// parallel between a fork and a join.
pub fn series_parallel<R: Rng + ?Sized>(
    depth: usize,
    params: &TaskParams,
    rng: &mut R,
) -> Result<TaskGraph, SynthError> {
    let mut b = TaskGraph::builder();
    let mut counter = 0usize;

    // Returns (entry, exit) of the generated component.
    fn gen<R: Rng + ?Sized>(
        b: &mut crate::graph::TaskGraphBuilder,
        counter: &mut usize,
        depth: usize,
        params: &TaskParams,
        rng: &mut R,
    ) -> Result<(TaskId, TaskId), SynthError> {
        *counter += 1;
        if depth == 0 {
            let t = b.task(format!("T{counter}"), params.sample(rng)?);
            return Ok((t, t));
        }
        let series = rng.gen_bool(0.5);
        let t = b.task(format!("T{counter}"), params.sample(rng)?);
        let (e1, x1) = gen(b, counter, depth - 1, params, rng)?;
        let (e2, x2) = gen(b, counter, depth - 1, params, rng)?;
        if series {
            // t → sub1 → sub2
            b.edge(t, e1);
            b.edge(x1, e2);
            Ok((t, x2))
        } else {
            // t forks into sub1 ∥ sub2, joined by a fresh exit node.
            b.edge(t, e1);
            b.edge(t, e2);
            *counter += 1;
            let join = b.task(format!("T{counter}"), params.sample(rng)?);
            b.edge(x1, join);
            b.edge(x2, join);
            Ok((t, join))
        }
    }

    gen(&mut b, &mut counter, depth, params, rng)?;
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::{is_topological, topological_order};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xBA75)
    }

    #[test]
    fn factor_validation() {
        let r = Rounding::EXACT;
        assert!(matches!(
            synthesize_points(1.0, 1.0, &[], ScalingScheme::InverseDuration, r),
            Err(SynthError::NoFactors)
        ));
        assert!(matches!(
            synthesize_points(1.0, 1.0, &[1.0, -0.5], ScalingScheme::InverseDuration, r),
            Err(SynthError::InvalidFactor { .. })
        ));
        assert!(matches!(
            synthesize_points(1.0, 1.0, &[0.5, 0.5], ScalingScheme::InverseDuration, r),
            Err(SynthError::NonDecreasingFactors)
        ));
        assert!(matches!(
            synthesize_points(0.0, 1.0, &[1.0, 0.5], ScalingScheme::InverseDuration, r),
            Err(SynthError::InvalidBase)
        ));
    }

    #[test]
    fn g3_style_synthesis_matches_hand_values() {
        // T1 of the paper's Table 1: base current 917 mA, worst-case 22 min.
        let pts = synthesize_points(
            917.0,
            22.0,
            &[1.0, 0.85, 0.68, 0.51, 0.33],
            ScalingScheme::ReversedDuration,
            Rounding::PAPER,
        )
        .unwrap();
        let currents: Vec<f64> = pts.iter().map(|p| p.current.value()).collect();
        let durations: Vec<f64> = pts.iter().map(|p| p.duration.value()).collect();
        assert_eq!(currents, vec![917.0, 563.0, 288.0, 122.0, 33.0]);
        assert_eq!(durations, vec![7.3, 11.2, 15.0, 18.7, 22.0]);
    }

    #[test]
    fn g2_style_synthesis_matches_hand_values() {
        // Node 1 of the paper's Figure 5: base current 60 mA, 22 min at DP4.
        let pts = synthesize_points(
            937.5, // 60 · 2.5³ — base is the *fastest* current by contract
            22.0,
            &[2.5, 5.0 / 3.0, 1.25, 1.0],
            ScalingScheme::InverseDuration,
            Rounding::PAPER,
        )
        .unwrap();
        let currents: Vec<f64> = pts.iter().map(|p| p.current.value()).collect();
        let durations: Vec<f64> = pts.iter().map(|p| p.duration.value()).collect();
        assert_eq!(currents, vec![938.0, 278.0, 117.0, 60.0]);
        assert_eq!(durations, vec![8.8, 13.2, 17.6, 22.0]);
    }

    #[test]
    fn synthesis_is_always_pareto() {
        let pts = synthesize_points(
            500.0,
            10.0,
            &[1.0, 0.7, 0.4],
            ScalingScheme::ReversedDuration,
            Rounding::EXACT,
        )
        .unwrap();
        for w in pts.windows(2) {
            assert!(w[0].duration.value() < w[1].duration.value());
            assert!(w[0].current.value() > w[1].current.value());
        }
    }

    #[test]
    fn generators_produce_valid_dags() {
        let p = TaskParams::default();
        let mut r = rng();
        let graphs = vec![
            chain(7, &p, &mut r).unwrap(),
            fork_join(&[3, 2], &p, &mut r).unwrap(),
            layered(4, 3, 0.4, &p, &mut r).unwrap(),
            random_dag(12, 0.3, &p, &mut r).unwrap(),
            series_parallel(3, &p, &mut r).unwrap(),
        ];
        for g in &graphs {
            let order = topological_order(g);
            assert!(is_topological(g, &order));
            assert_eq!(g.point_count(), 5);
        }
    }

    #[test]
    fn chain_has_chain_shape() {
        let g = chain(5, &TaskParams::default(), &mut rng()).unwrap();
        assert_eq!(g.task_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.sinks().len(), 1);
    }

    #[test]
    fn fork_join_shape() {
        let g = fork_join(&[4], &TaskParams::default(), &mut rng()).unwrap();
        // source + 4 branches + join
        assert_eq!(g.task_count(), 6);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.sinks().len(), 1);
    }

    #[test]
    fn generators_are_deterministic_for_a_seed() {
        let p = TaskParams::default();
        let a = layered(3, 3, 0.5, &p, &mut StdRng::seed_from_u64(7)).unwrap();
        let b = layered(3, 3, 0.5, &p, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(a, b);
        let c = layered(3, 3, 0.5, &p, &mut StdRng::seed_from_u64(8)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn series_parallel_is_single_entry_single_exit() {
        for seed in 0..5u64 {
            let g = series_parallel(3, &TaskParams::default(), &mut StdRng::seed_from_u64(seed))
                .unwrap();
            assert_eq!(g.sources().len(), 1, "seed {seed}");
            assert_eq!(g.sinks().len(), 1, "seed {seed}");
        }
    }
}
