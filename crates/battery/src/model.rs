//! The common interface every battery model implements.

use crate::profile::LoadProfile;
use crate::units::{MilliAmpMinutes, Minutes};

/// A battery model maps a discharge profile to an *apparent charge* — the
/// amount of rated capacity the profile has consumed by a given instant.
///
/// For an ideal battery the apparent charge is just the delivered charge
/// `∫ I dt`; non-ideal models add a load-dependent penalty (rate-capacity
/// effect) that may later shrink again while the battery rests (recovery
/// effect). The battery is empty at the first instant the apparent charge
/// reaches the rated capacity `α`.
///
/// The trait is object-safe so schedulers can hold a `&dyn BatteryModel` and
/// be tested against every model (C-OBJECT).
pub trait BatteryModel {
    /// Apparent charge consumed by time `at`.
    ///
    /// Intervals that start after `at` are ignored and an interval in
    /// progress at `at` is clipped. Implementations must return a
    /// non-negative, finite value for valid profiles.
    fn apparent_charge(&self, profile: &LoadProfile, at: Minutes) -> MilliAmpMinutes;

    /// Short human-readable model name for reports.
    fn name(&self) -> &'static str;

    /// The instant the battery of rated capacity `capacity` dies under
    /// `profile`, or `None` when it survives the whole profile.
    ///
    /// The default implementation scans `[0, profile.end()]` with
    /// [`LIFETIME_SCAN_STEPS`] samples and refines the first crossing by
    /// bisection, which is correct for any model whose apparent charge is
    /// continuous in time and increasing while current flows.
    fn lifetime(&self, profile: &LoadProfile, capacity: MilliAmpMinutes) -> Option<Minutes> {
        let end = profile.end();
        if end == Minutes::ZERO {
            return None;
        }
        let dead_at = |t: Minutes| self.apparent_charge(profile, t).value() >= capacity.value();
        if dead_at(Minutes::ZERO) {
            return Some(Minutes::ZERO);
        }
        let step = end.value() / LIFETIME_SCAN_STEPS as f64;
        let mut prev = Minutes::ZERO;
        for k in 1..=LIFETIME_SCAN_STEPS {
            let t = Minutes::new(step * k as f64);
            if dead_at(t) {
                // Bisect (prev, t] down to a fine tolerance.
                let mut lo = prev;
                let mut hi = t;
                for _ in 0..BISECTION_ITERS {
                    let mid = Minutes::new(0.5 * (lo.value() + hi.value()));
                    if dead_at(mid) {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                return Some(hi);
            }
            prev = t;
        }
        None
    }

    /// Apparent charge at every instant of an ascending sample grid.
    ///
    /// The default maps [`Self::apparent_charge`] over `times`; models with
    /// incremental structure (the RV diffusion model) override it with a
    /// single-pass sweep.
    fn apparent_charge_sweep(
        &self,
        profile: &LoadProfile,
        times: &[Minutes],
    ) -> Vec<MilliAmpMinutes> {
        times
            .iter()
            .map(|&t| self.apparent_charge(profile, t))
            .collect()
    }
}

/// Number of scan samples used by the default [`BatteryModel::lifetime`].
pub const LIFETIME_SCAN_STEPS: usize = 4096;

/// Bisection refinement iterations for the default [`BatteryModel::lifetime`].
pub const BISECTION_ITERS: usize = 48;

impl<M: BatteryModel + ?Sized> BatteryModel for &M {
    fn apparent_charge(&self, profile: &LoadProfile, at: Minutes) -> MilliAmpMinutes {
        (**self).apparent_charge(profile, at)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn lifetime(&self, profile: &LoadProfile, capacity: MilliAmpMinutes) -> Option<Minutes> {
        (**self).lifetime(profile, capacity)
    }
    fn apparent_charge_sweep(
        &self,
        profile: &LoadProfile,
        times: &[Minutes],
    ) -> Vec<MilliAmpMinutes> {
        (**self).apparent_charge_sweep(profile, times)
    }
}

impl<M: BatteryModel + ?Sized> BatteryModel for Box<M> {
    fn apparent_charge(&self, profile: &LoadProfile, at: Minutes) -> MilliAmpMinutes {
        (**self).apparent_charge(profile, at)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn lifetime(&self, profile: &LoadProfile, capacity: MilliAmpMinutes) -> Option<Minutes> {
        (**self).lifetime(profile, capacity)
    }
    fn apparent_charge_sweep(
        &self,
        profile: &LoadProfile,
        times: &[Minutes],
    ) -> Vec<MilliAmpMinutes> {
        (**self).apparent_charge_sweep(profile, times)
    }
}

/// The peak apparent charge over a mission and when it occurs — the
/// *minimum battery capacity that survives the profile*. Because of the
/// recovery effect the apparent charge is not monotone: it can crest right
/// after a heavy interval and relax below that crest later, and a battery
/// dies at the FIRST crossing of its capacity. Computed by dense sampling
/// (`samples_per_interval` points inside every interval plus every
/// boundary), which bounds the error by the model's smoothness over one
/// sub-interval.
pub fn peak_apparent_charge<M: BatteryModel + ?Sized>(
    model: &M,
    profile: &LoadProfile,
    samples_per_interval: usize,
) -> (Minutes, MilliAmpMinutes) {
    let per = samples_per_interval.max(1);
    let mut best_t = Minutes::ZERO;
    let mut best = MilliAmpMinutes::ZERO;
    let mut consider = |t: Minutes| {
        let q = model.apparent_charge(profile, t);
        if q.value() > best.value() {
            best = q;
            best_t = t;
        }
    };
    for iv in profile.intervals() {
        for k in 1..=per {
            let t = iv.start + iv.duration * (k as f64 / per as f64);
            consider(t);
        }
    }
    consider(profile.end());
    (best_t, best)
}

#[cfg(test)]
mod peak_tests {
    use super::*;
    use crate::rv::RvModel;
    use crate::units::MilliAmps;

    #[test]
    fn peak_can_exceed_the_final_sigma() {
        // Heavy burst then a long light tail: sigma crests at the end of
        // the burst and relaxes during the tail.
        let m = RvModel::date05();
        let p = LoadProfile::from_steps([
            (Minutes::new(5.0), MilliAmps::new(800.0)),
            (Minutes::new(40.0), MilliAmps::new(10.0)),
        ])
        .unwrap();
        let (at, peak) = peak_apparent_charge(&m, &p, 32);
        let final_sigma = m.apparent_charge(&p, p.end());
        assert!(
            peak.value() > final_sigma.value(),
            "peak {peak} vs final {final_sigma}"
        );
        assert!(
            at.value() <= 10.0,
            "crest sits near the burst end, got {at}"
        );
        // A battery of exactly the peak survives; 1% less does not.
        assert_eq!(m.lifetime(&p, peak * 1.0001), None);
        assert!(m.lifetime(&p, peak * 0.99).is_some());
    }

    #[test]
    fn peak_equals_final_for_monotone_profiles() {
        let m = RvModel::date05();
        let p = LoadProfile::from_steps([(Minutes::new(10.0), MilliAmps::new(100.0))]).unwrap();
        let (_, peak) = peak_apparent_charge(&m, &p, 64);
        let final_sigma = m.apparent_charge(&p, p.end());
        assert!((peak.value() - final_sigma.value()).abs() < 1e-9);
    }
}
