//! Perf-trajectory harness: times the σ-evaluation kernels, the incremental
//! window-search kernel, topological-order enumeration, the exhaustive
//! baseline, and the full scheduler on synthetic instances, then writes
//! `BENCH_scheduler.json` so future changes have a recorded baseline.
//!
//! Run with `cargo run --release -p batsched-bench --bin repro_bench_json`.
//! Flags:
//! * `--full` — more samples (default is quick mode; `--quick` is accepted
//!   as an explicit no-op for symmetry);
//! * `--check` — after measuring, fail (exit 1) if `sigma_full_vs_naive`,
//!   `cdp_speedup` or `row_carry` fall below conservative floors (2×, 2×,
//!   1.5×), or if the `sweep_scaling` fitted growth exponent exceeds 1.4
//!   (the carried window sweep must stay ~linear in n). CI runs this so
//!   perf wins cannot be silently lost.
//!
//! Reported medians (ns):
//! * `sigma_naive` — one `RvModel::sigma` over the prebuilt 50-interval
//!   profile (the old inner-loop cost, without profile construction);
//! * `sigma_naive_with_profile` — profile construction + σ, what the old
//!   `positional_cost` actually paid per candidate;
//! * `sigma_engine_full` — one full `SigmaEvaluator` pass (cold cache);
//! * `sigma_engine_swap` — one re-evaluation after a single design-point
//!   swap (warm suffix cache);
//! * `cdp_incremental` / `cdp_naive` — one full-window `ChooseDesignPoints`
//!   through the journal kernel vs. the retained clone-and-rescan
//!   reference;
//! * `topo` — orders/sec of the in-place enumeration generator vs. the
//!   retained recursive reference (100 k orders of the n=50 instance);
//! * `exhaustive` — one `Exhaustive::best` solve with the prefix-keyed σ
//!   stack vs. the retained per-leaf suffix-engine path, as orders/sec;
//! * `schedule_run` — one full `batsched_core::schedule` call;
//! * `sweep` — one `schedule_in` through a reused workspace with the
//!   cross-row / cross-window carry on vs. forced off (the pre-carry
//!   kernel), whose ratio is `speedup.row_carry`;
//! * `sweep_scaling` — one full window sweep (`EvaluateWindows`) on the
//!   shared n-scaling instances (n ∈ {25, 50, 100, 200}, m = 8, 70%
//!   relative slack) and the fitted growth exponent of the series — the
//!   evidence that the carried kernel killed the quadratic term.

#![forbid(unsafe_code)]

use batsched_baselines::Exhaustive;
use batsched_battery::eval::SigmaScratch;
use batsched_battery::rv::RvModel;
use batsched_battery::units::Minutes;
use batsched_bench::fitted_exponent;
use batsched_bench::workloads::{synthetic_n50_m8, synthetic_scaling, SYNTH_N50_M8_SEED};
use batsched_core::schedule::{entry_id, graph_evaluator};
use batsched_core::search::DiagSearch;
use batsched_core::{profile_of, schedule, schedule_in, SchedulerConfig, SolverWorkspace};
use batsched_taskgraph::analysis::{max_makespan, min_makespan};
use batsched_taskgraph::synth::{layered, Rounding, ScalingScheme, TaskParams};
use batsched_taskgraph::topo::{
    for_each_topological_order, for_each_topological_order_reference, topological_order,
};
use batsched_taskgraph::{PointId, TaskGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Median ns/iter of `f`, calibrated so each sample runs ≥ ~2 ms.
fn median_ns<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    let start = Instant::now();
    f();
    let one = start.elapsed().as_nanos().max(25);
    let per_sample = (2_000_000u128 / one).clamp(1, 200_000) as usize;
    let mut timings: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..per_sample {
                f();
            }
            start.elapsed().as_nanos() as f64 / per_sample as f64
        })
        .collect();
    timings.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    timings[timings.len() / 2]
}

/// Minimum ns/iter of `f` over `samples` batches — the noise-robust
/// estimator for the `sweep_scaling` fit, where a single slow sample on
/// the small instances would skew the fitted exponent.
fn min_ns<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    let start = Instant::now();
    f();
    let one = start.elapsed().as_nanos().max(25);
    let per_sample = (2_000_000u128 / one).clamp(1, 200_000) as usize;
    (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..per_sample {
                f();
            }
            start.elapsed().as_nanos() as f64 / per_sample as f64
        })
        .fold(f64::INFINITY, f64::min)
}

/// Seed of the small exhaustive-baseline instance.
const EXHAUSTIVE_SEED: u64 = 0x0E57_AE11;

/// Instance sizes of the `sweep_scaling` series (m = 8 throughout).
const SWEEP_SCALING_N: [usize; 4] = [25, 50, 100, 200];

/// A deep layered instance (n=30, m=3) for the exhaustive bench: the
/// assignment DFS dominates, which is exactly the regime the prefix-keyed
/// σ stack accelerates (per-leaf cost O(terms) instead of O(n·terms) plus
/// a per-leaf allocation). Order and assignment caps keep one solve
/// bench-friendly.
fn exhaustive_instance() -> TaskGraph {
    let m = 3usize;
    let params = TaskParams {
        current_range: (100.0, 900.0),
        duration_range: (2.0, 10.0),
        factors: (0..m)
            .map(|j| 1.0 - 0.6 * j as f64 / (m - 1) as f64)
            .collect(),
        scheme: ScalingScheme::ReversedDuration,
        rounding: Rounding::PAPER,
    };
    let mut rng = StdRng::seed_from_u64(EXHAUSTIVE_SEED);
    layered(15, 2, 0.5, &params, &mut rng).expect("valid generator config")
}

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let check = args.iter().any(|a| a == "--check");
    let samples = if full { 40 } else { 12 };

    let g = synthetic_n50_m8();
    let n = g.task_count();
    let m = g.point_count();
    let model = RvModel::date05();
    let cfg = SchedulerConfig::paper();
    // Moderate slack: 70% of the way from all-fast to all-lean.
    let lo = min_makespan(&g).value();
    let hi = max_makespan(&g).value();
    let deadline = Minutes::new(lo + (hi - lo) * 0.7);

    let order = topological_order(&g);
    // A mixed assignment exercising every column.
    let assignment: Vec<PointId> = (0..n).map(|t| PointId(t % m)).collect();
    let profile = profile_of(&g, &order, &assignment);
    let end = profile.end();

    let eval = graph_evaluator(&g, &model);
    let entries: Vec<u32> = order
        .iter()
        .map(|&t| entry_id(t, m, assignment[t.index()]))
        .collect();

    eprintln!("instance: n={n}, m={m}, deadline={deadline}");

    let sigma_naive = median_ns(samples, || {
        black_box(model.sigma(black_box(&profile), end));
    });
    let sigma_naive_with_profile = median_ns(samples, || {
        let p = profile_of(&g, &order, &assignment);
        black_box(model.sigma(black_box(&p), p.end()));
    });
    let mut scratch = SigmaScratch::new();
    let sigma_engine_full = median_ns(samples, || {
        scratch.invalidate(); // cold cache: measure the full pass
        black_box(eval.sigma_seq(black_box(&entries), &mut scratch));
    });
    let mut swap_entries = entries.clone();
    let swap_pos = n / 2;
    let mut flip = false;
    eval.sigma_seq(&swap_entries, &mut scratch);
    let sigma_engine_swap = median_ns(samples, || {
        // Toggle one task's design point — the dominant search move.
        let t = order[swap_pos];
        let col = if flip { PointId(0) } else { PointId(m - 1) };
        flip = !flip;
        swap_entries[swap_pos] = entry_id(t, m, col);
        black_box(eval.sigma_seq(black_box(&swap_entries), &mut scratch));
    });

    // One full-window ChooseDesignPoints sweep — the scheduler's hot inner
    // loop — through the incremental journal kernel and through the
    // retained clone-and-rescan reference.
    let mut diag = DiagSearch::new(&g, &cfg, deadline).expect("valid paper config");
    let cdp_incremental = median_ns(samples, || {
        black_box(diag.choose(black_box(&order), 0).expect("feasible window"));
    });
    let cdp_naive = median_ns(samples.min(12), || {
        black_box(
            diag.choose_reference(black_box(&order), 0)
                .expect("feasible window"),
        );
    });
    let incr = diag.choose(&order, 0).expect("feasible window").to_vec();
    let naive = diag.choose_reference(&order, 0).expect("feasible window");
    assert_eq!(incr, naive, "kernel and reference must agree bit-for-bit");

    // Topological-order enumeration throughput, 100 k orders of the n=50
    // instance (it has astronomically many, so the cap always binds).
    let topo_cap = 100_000usize;
    let topo_new_ns = median_ns(samples.min(8), || {
        black_box(for_each_topological_order(&g, topo_cap, |o| {
            black_box(o);
        }));
    });
    let topo_ref_ns = median_ns(samples.min(8), || {
        black_box(for_each_topological_order_reference(&g, topo_cap, |o| {
            black_box(o);
        }));
    });
    let topo_new_ops = topo_cap as f64 / (topo_new_ns / 1e9);
    let topo_ref_ops = topo_cap as f64 / (topo_ref_ns / 1e9);

    // Exhaustive baseline: one full solve, prefix-keyed σ stack vs. the
    // retained per-leaf suffix-engine path.
    let eg = exhaustive_instance();
    let elo = min_makespan(&eg).value();
    let ehi = max_makespan(&eg).value();
    let ed = Minutes::new(elo + (ehi - elo) * 0.6);
    let ex_fast = Exhaustive {
        max_orders: 8,
        max_assignments_per_order: 4_000,
        ..Default::default()
    };
    let ex_slow = Exhaustive {
        use_prefix_cache: false,
        ..ex_fast.clone()
    };
    let ex_orders = for_each_topological_order(&eg, ex_fast.max_orders, |_| {});
    let (sched_fast, cost_fast) = ex_fast.best(&eg, ed).expect("feasible instance");
    let (sched_slow, cost_slow) = ex_slow.best(&eg, ed).expect("feasible instance");
    // The two paths may only disagree on schedules tied within float
    // association noise; the costs must always match to tolerance.
    assert!(
        (cost_fast - cost_slow).abs() <= 1e-9 * cost_slow.max(1.0),
        "cache on/off cost mismatch: {cost_fast} vs {cost_slow}"
    );
    if sched_fast != sched_slow {
        let a = sched_fast.battery_cost(&eg, &RvModel::date05()).value();
        let b = sched_slow.battery_cost(&eg, &RvModel::date05()).value();
        assert!(
            (a - b).abs() <= 1e-9 * b.max(1.0),
            "cache on/off picked different non-tied optima: {a} vs {b}"
        );
    }
    let ex_new_ns = median_ns(samples.min(8), || {
        black_box(ex_fast.best(&eg, ed).expect("feasible instance"));
    });
    let ex_ref_ns = median_ns(samples.min(8), || {
        black_box(ex_slow.best(&eg, ed).expect("feasible instance"));
    });
    let ex_new_ops = ex_orders as f64 / (ex_new_ns / 1e9);
    let ex_ref_ops = ex_orders as f64 / (ex_ref_ns / 1e9);

    let schedule_run = median_ns(samples.min(12), || {
        black_box(schedule(&g, deadline, &cfg).expect("feasible synthetic instance"));
    });

    // Row/window-carry A/B on the full solver: one reused workspace with
    // the carried sweep, one with the carry forced off (the pre-carry
    // kernel: fresh O(n) row preparation, no cross-window reuse).
    let mut ws_carried = SolverWorkspace::new();
    let sweep_carried = median_ns(samples.min(12), || {
        black_box(
            schedule_in(&g, deadline, &cfg, &mut ws_carried).expect("feasible synthetic instance"),
        );
    });
    let mut ws_nocarry = SolverWorkspace::new();
    ws_nocarry.disable_sweep_carry();
    let sweep_nocarry = median_ns(samples.min(12), || {
        black_box(
            schedule_in(&g, deadline, &cfg, &mut ws_nocarry).expect("feasible synthetic instance"),
        );
    });

    // Sweep scaling: one full EvaluateWindows per sample on the shared
    // n-scaling family, then the fitted growth exponent over n.
    let scaling_ns: Vec<(usize, f64)> = SWEEP_SCALING_N
        .iter()
        .map(|&sn| {
            let sg = synthetic_scaling(sn);
            let slo = min_makespan(&sg).value();
            let shi = max_makespan(&sg).value();
            let sd = Minutes::new(slo + (shi - slo) * 0.7);
            let sseq = topological_order(&sg);
            let mut sdiag = DiagSearch::new(&sg, &cfg, sd).expect("valid paper config");
            sdiag.windows(&sseq).expect("feasible scaling instance");
            let ns = min_ns(samples.max(24), || {
                black_box(sdiag.windows(black_box(&sseq)).expect("feasible instance"));
            });
            (sn, ns)
        })
        .collect();
    let sweep_exponent = fitted_exponent(
        &scaling_ns
            .iter()
            .map(|&(sn, ns)| (sn as f64, ns))
            .collect::<Vec<_>>(),
    );

    let speedup_full = sigma_naive / sigma_engine_full;
    let speedup_vs_old_inner = sigma_naive_with_profile / sigma_engine_full;
    let speedup_swap = sigma_naive_with_profile / sigma_engine_swap;
    let cdp_speedup = cdp_naive / cdp_incremental;
    let topo_speedup = topo_new_ops / topo_ref_ops;
    let exhaustive_speedup = ex_new_ops / ex_ref_ops;
    let row_carry = sweep_nocarry / sweep_carried;
    let scaling_n_json = scaling_ns
        .iter()
        .map(|&(sn, _)| sn.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let scaling_ns_json = scaling_ns
        .iter()
        .map(|&(_, ns)| format!("{ns:.0}"))
        .collect::<Vec<_>>()
        .join(", ");

    let json = format!(
        "{{\n  \"instance\": {{\"n\": {n}, \"m\": {m}, \"deadline_min\": {dl}, \"seed\": {seed}}},\n  \
         \"quick\": {quick},\n  \
         \"sigma_eval_ns\": {{\n    \"naive\": {sigma_naive:.1},\n    \
         \"naive_with_profile\": {sigma_naive_with_profile:.1},\n    \
         \"engine_full\": {sigma_engine_full:.1},\n    \
         \"engine_swap\": {sigma_engine_swap:.1}\n  }},\n  \
         \"cdp_ns\": {{\n    \"incremental\": {cdp_incremental:.1},\n    \
         \"naive\": {cdp_naive:.1}\n  }},\n  \
         \"topo\": {{\n    \"orders\": {topo_cap},\n    \
         \"orders_per_sec\": {topo_new_ops:.0},\n    \
         \"orders_per_sec_reference\": {topo_ref_ops:.0}\n  }},\n  \
         \"exhaustive\": {{\n    \"instance\": {{\"n\": {exn}, \"m\": {exm}, \"deadline_min\": {exd}, \"seed\": {exseed}}},\n    \
         \"orders\": {ex_orders},\n    \
         \"solve_ns\": {ex_new_ns:.0},\n    \
         \"solve_ns_reference\": {ex_ref_ns:.0},\n    \
         \"topo_orders_per_sec\": {ex_new_ops:.1},\n    \
         \"topo_orders_per_sec_reference\": {ex_ref_ops:.1}\n  }},\n  \
         \"schedule_run_ns\": {schedule_run:.1},\n  \
         \"sweep\": {{\n    \"carried_ns\": {sweep_carried:.1},\n    \
         \"nocarry_ns\": {sweep_nocarry:.1}\n  }},\n  \
         \"sweep_scaling\": {{\n    \"n\": [{scaling_n_json}],\n    \
         \"evaluate_windows_ns\": [{scaling_ns_json}],\n    \
         \"fitted_exponent\": {sweep_exponent:.3}\n  }},\n  \
         \"speedup\": {{\n    \"sigma_full_vs_naive\": {speedup_full:.2},\n    \
         \"sigma_full_vs_old_inner_loop\": {speedup_vs_old_inner:.2},\n    \
         \"sigma_swap_vs_old_inner_loop\": {speedup_swap:.2},\n    \
         \"cdp_speedup\": {cdp_speedup:.2},\n    \
         \"topo_speedup\": {topo_speedup:.2},\n    \
         \"exhaustive_speedup\": {exhaustive_speedup:.2},\n    \
         \"row_carry\": {row_carry:.2}\n  }}\n}}\n",
        dl = deadline.value(),
        seed = SYNTH_N50_M8_SEED,
        quick = !full,
        exn = eg.task_count(),
        exm = eg.point_count(),
        exd = ed.value(),
        exseed = EXHAUSTIVE_SEED,
    );
    std::fs::write("BENCH_scheduler.json", &json).expect("write BENCH_scheduler.json");
    println!("{json}");
    eprintln!("wrote BENCH_scheduler.json");

    if check {
        // Conservative floors (actual ratios are well above): catch a
        // regression that silently loses an order-of-magnitude win without
        // making CI flaky on a noisy machine.
        let mut failed = false;
        for (name, value, floor) in [
            ("sigma_full_vs_naive", speedup_full, 2.0),
            ("cdp_speedup", cdp_speedup, 2.0),
            ("row_carry", row_carry, 1.5),
        ] {
            if value < floor {
                eprintln!("PERF REGRESSION: {name} = {value:.2}x, floor {floor:.1}x");
                failed = true;
            }
        }
        // The carried sweep must stay ~linear in n: a regrown quadratic
        // term shows up here long before the fixed-size medians move.
        if sweep_exponent > 1.4 {
            eprintln!("PERF REGRESSION: sweep_scaling exponent = {sweep_exponent:.3}, ceiling 1.4");
            failed = true;
        }
        if failed {
            // ExitCode, not process::exit: destructors still run, so the
            // snapshot file written above is fully flushed.
            return std::process::ExitCode::FAILURE;
        }
        eprintln!(
            "perf floors OK (sigma_full_vs_naive >= 2x, cdp_speedup >= 2x, \
             row_carry >= 1.5x, sweep exponent {sweep_exponent:.2} <= 1.4)"
        );
    }
    std::process::ExitCode::SUCCESS
}
