//! Simulated annealing over (sequence, assignment) pairs.
//!
//! The DATE'05 paper's related-work section argues SA is impractical *on the
//! embedded platform itself*; we implement it anyway as an offline quality
//! yardstick. Moves: swap two adjacent order positions (when still
//! topological), bump one task's design point by ±1 column, or re-draw one
//! task's design point uniformly. Infeasible states are admitted with a
//! linear overtime penalty so the search can traverse the boundary.

use crate::Scheduler;
use batsched_battery::rv::RvModel;
use batsched_battery::units::Minutes;
use batsched_core::{EngineCost, Schedule, SchedulerError};
use batsched_taskgraph::topo::{is_topological, topological_order};
use batsched_taskgraph::{PointId, TaskGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulated-annealing scheduler (seeded, deterministic per seed).
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    /// RNG seed.
    pub seed: u64,
    /// Number of proposal steps.
    pub steps: usize,
    /// Initial temperature as a fraction of the initial cost.
    pub initial_temp_fraction: f64,
    /// Geometric cooling rate per step.
    pub cooling: f64,
    /// Penalty weight (mA·min per overtime minute).
    pub overtime_penalty: f64,
    /// Battery model used for scoring.
    pub model: RvModel,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        Self {
            seed: 0xD47E_2005,
            steps: 20_000,
            initial_temp_fraction: 0.05,
            cooling: 0.9995,
            overtime_penalty: 1_000.0,
            model: RvModel::date05(),
        }
    }
}

impl SimulatedAnnealing {
    fn penalised_cost(
        &self,
        engine: &mut EngineCost,
        order: &[batsched_taskgraph::TaskId],
        assignment: &[PointId],
        deadline: f64,
    ) -> (f64, f64) {
        let (cost, makespan) = engine.cost(order, assignment);
        let overtime = (makespan.value() - deadline).max(0.0);
        (
            cost.value() + overtime * self.overtime_penalty,
            makespan.value(),
        )
    }
}

impl Scheduler for SimulatedAnnealing {
    fn name(&self) -> &'static str {
        "simulated-annealing"
    }

    /// # Errors
    ///
    /// [`SchedulerError::DeadlineInfeasible`] when even all-fastest misses
    /// the deadline (no feasible state exists at all), and
    /// [`SchedulerError::InvalidDeadline`] for bad deadlines.
    fn schedule(&self, g: &TaskGraph, deadline: Minutes) -> Result<Schedule, SchedulerError> {
        if !(deadline.is_finite() && deadline.value() > 0.0) {
            return Err(SchedulerError::InvalidDeadline { deadline });
        }
        let fastest = batsched_taskgraph::analysis::min_makespan(g);
        if fastest.value() > deadline.value() + 1e-9 {
            return Err(SchedulerError::DeadlineInfeasible { fastest, deadline });
        }
        let n = g.task_count();
        let m = g.point_count();
        let d = deadline.value();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut engine = EngineCost::new(g, &self.model);

        // Start from a trivially feasible state: topological order, all
        // tasks at their fastest point.
        let mut order = topological_order(g);
        let mut assignment = vec![PointId(0); n];
        let (mut cost, _) = self.penalised_cost(&mut engine, &order, &assignment, d);
        let mut best = (order.clone(), assignment.clone(), cost);
        let mut temp = (cost * self.initial_temp_fraction).max(1.0);

        for _ in 0..self.steps {
            let mut new_order = order.clone();
            let mut new_assign = assignment.clone();
            match rng.gen_range(0..3u8) {
                0 if n >= 2 => {
                    let k = rng.gen_range(0..n - 1);
                    new_order.swap(k, k + 1);
                    if !is_topological(g, &new_order) {
                        continue;
                    }
                }
                1 => {
                    let t = rng.gen_range(0..n);
                    let cur = new_assign[t].index();
                    let next = if rng.gen_bool(0.5) {
                        cur.saturating_sub(1)
                    } else {
                        (cur + 1).min(m - 1)
                    };
                    new_assign[t] = PointId(next);
                }
                _ => {
                    let t = rng.gen_range(0..n);
                    new_assign[t] = PointId(rng.gen_range(0..m));
                }
            }
            let (new_cost, new_makespan) =
                self.penalised_cost(&mut engine, &new_order, &new_assign, d);
            let accept =
                new_cost <= cost || rng.gen_bool(((cost - new_cost) / temp).exp().clamp(0.0, 1.0));
            if accept {
                order = new_order;
                assignment = new_assign;
                cost = new_cost;
                // Track the best *feasible* state only.
                if new_makespan <= d + 1e-9 && cost < best.2 {
                    best = (order.clone(), assignment.clone(), cost);
                }
            }
            temp = (temp * self.cooling).max(1e-6);
        }

        Ok(Schedule::new(best.0, best.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batsched_taskgraph::paper::g2;

    #[test]
    fn produces_valid_schedules() {
        let g = g2();
        for d in batsched_taskgraph::paper::G2_TABLE4_DEADLINES {
            let s = SimulatedAnnealing::default()
                .schedule(&g, Minutes::new(d))
                .unwrap();
            s.validate(&g, Some(Minutes::new(d))).unwrap();
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = g2();
        let a = SimulatedAnnealing::default()
            .schedule(&g, Minutes::new(75.0))
            .unwrap();
        let b = SimulatedAnnealing::default()
            .schedule(&g, Minutes::new(75.0))
            .unwrap();
        assert_eq!(a, b);
        let c = SimulatedAnnealing {
            seed: 1,
            ..Default::default()
        }
        .schedule(&g, Minutes::new(75.0))
        .unwrap();
        // Different seeds usually differ; at minimum both are valid.
        c.validate(&g, Some(Minutes::new(75.0))).unwrap();
    }

    #[test]
    fn improves_on_the_all_fast_start() {
        let g = g2();
        let model = RvModel::date05();
        let d = Minutes::new(95.0);
        let start = Schedule::new(topological_order(&g), vec![PointId(0); g.task_count()]);
        let sa = SimulatedAnnealing::default().schedule(&g, d).unwrap();
        assert!(
            sa.battery_cost(&g, &model).value() < start.battery_cost(&g, &model).value(),
            "annealing must beat the trivial feasible start at a loose deadline"
        );
    }

    #[test]
    fn rejects_impossible_instances() {
        let g = g2();
        assert!(matches!(
            SimulatedAnnealing::default().schedule(&g, Minutes::new(40.0)),
            Err(SchedulerError::DeadlineInfeasible { .. })
        ));
    }
}
