//! Offline stand-in for the `serde_json` crate, backed by the vendored
//! `serde` shim's JSON value model.

pub use serde::json::{Error, Value};

/// Serializes a value as compact JSON.
///
/// # Errors
///
/// Never fails for the shapes this workspace serializes; the `Result` is
/// kept for API compatibility with the real crate.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::json::write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes a value as two-space-indented JSON.
///
/// # Errors
///
/// Never fails for the shapes this workspace serializes.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::json::write_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Parses a value from a JSON document.
///
/// # Errors
///
/// Syntax errors and shape mismatches are reported with a message.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = serde::json::parse(s)?;
    T::from_value(&v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_collections() {
        let v: Vec<(usize, f64)> = vec![(1, 2.5), (3, 4.0)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2.5],[3,4]]");
        let back: Vec<(usize, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<f64>("1.5 x").is_err());
        assert!(from_str::<f64>("[1").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = String::from("a\"b\\c\nd\té");
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn options_handle_null_and_missing() {
        let some: Option<f64> = from_str("2.5").unwrap();
        assert_eq!(some, Some(2.5));
        let none: Option<f64> = from_str("null").unwrap();
        assert_eq!(none, None);
    }
}
