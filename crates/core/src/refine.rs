//! Local-search refinement of a finished schedule — an extension beyond the
//! paper (its future-work direction of squeezing the remaining slack).
//!
//! Deterministic steepest-descent hill climbing over two move families:
//!
//! * **adjacent swaps** — exchange positions `k` and `k+1` when no edge
//!   orders them (exploits the battery model's order sensitivity further
//!   than the paper's one-shot weighted re-sequencing);
//! * **point moves** — shift one task's design point a column up or down
//!   while the deadline still holds.
//!
//! Each pass applies the single best improving move; passes repeat until a
//! fixed point or the pass budget is hit. The result is never worse and
//! never invalid.

use crate::config::SchedulerConfig;
use crate::error::SchedulerError;
use crate::schedule::Schedule;
use batsched_battery::units::{MilliAmpMinutes, Minutes};
use batsched_taskgraph::{PointId, TaskGraph, TaskId};
use serde::{Deserialize, Serialize};

/// Refinement statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RefineStats {
    /// Passes executed (each applies at most one move).
    pub passes: usize,
    /// Adjacent swaps applied.
    pub swaps: usize,
    /// Design-point moves applied.
    pub point_moves: usize,
}

/// Outcome of [`refine_schedule`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Refined {
    /// The (possibly improved) schedule.
    pub schedule: Schedule,
    /// Its battery cost.
    pub cost: MilliAmpMinutes,
    /// Its makespan.
    pub makespan: Minutes,
    /// What the search did.
    pub stats: RefineStats,
}

/// Polishes `schedule` by steepest-descent local search under `config`'s
/// battery model, keeping the deadline satisfied. `max_passes` bounds the
/// number of applied moves (64 is plenty for paper-sized instances).
///
/// # Errors
///
/// [`SchedulerError::InvalidConfig`] when the configuration is unusable.
/// The input schedule is trusted to be valid (call
/// [`Schedule::validate`] first for untrusted inputs).
pub fn refine_schedule(
    g: &TaskGraph,
    schedule: &Schedule,
    deadline: Minutes,
    config: &SchedulerConfig,
    max_passes: usize,
) -> Result<Refined, SchedulerError> {
    refine_schedule_in(
        g,
        schedule,
        deadline,
        config,
        max_passes,
        &mut crate::algorithm::SolverWorkspace::new(),
    )
}

/// [`refine_schedule`] with caller-owned solver buffers: the probe engine
/// (σ evaluator tables + suffix-cache scratch) lives in `ws` and is reused
/// across calls while the graph catalogue and battery model are unchanged
/// — a worker polishing a stream of schedules on one graph builds the
/// evaluator once and keeps its scratch warm, instead of re-warming both
/// per call.
///
/// # Errors
///
/// [`SchedulerError::InvalidConfig`] when the configuration is unusable.
pub fn refine_schedule_in(
    g: &TaskGraph,
    schedule: &Schedule,
    deadline: Minutes,
    config: &SchedulerConfig,
    max_passes: usize,
    ws: &mut crate::algorithm::SolverWorkspace,
) -> Result<Refined, SchedulerError> {
    config.validate()?;
    let model = config.battery_model()?;
    let m = g.point_count();
    let d = deadline.value();

    // The local-search inner loop probes many near-identical schedules; the
    // engine's suffix cache makes each probe pay only for its changed
    // prefix, and the workspace keeps engine + scratch across calls.
    let engine = ws.refine_engine(g, &model);

    let mut order: Vec<TaskId> = schedule.order().to_vec();
    let mut assignment: Vec<PointId> = schedule.assignment().to_vec();
    let (mut cost, mut makespan) = engine.cost(&order, &assignment);
    let mut stats = RefineStats::default();

    // Pre-compute the edge set for O(1) swap legality.
    let edge = |a: TaskId, b: TaskId| g.succs(a).contains(&b);

    for _ in 0..max_passes {
        stats.passes += 1;
        #[derive(Clone, Copy)]
        enum Move {
            Swap(usize),
            Point(usize, usize),
        }
        let mut best: Option<(Move, f64, f64)> = None;

        // Adjacent swaps.
        for k in 0..order.len().saturating_sub(1) {
            if edge(order[k], order[k + 1]) {
                continue;
            }
            order.swap(k, k + 1);
            let (c, mk) = engine.cost(&order, &assignment);
            order.swap(k, k + 1);
            if c.value() < cost.value() - 1e-9 && best.is_none_or(|(_, bc, _)| c.value() < bc) {
                best = Some((Move::Swap(k), c.value(), mk.value()));
            }
        }
        // Single design-point moves.
        for t in g.task_ids() {
            let cur = assignment[t.index()].index();
            for next in [cur.wrapping_sub(1), cur + 1] {
                if next >= m || next == cur {
                    continue;
                }
                let delta =
                    g.duration(t, PointId(next)).value() - g.duration(t, PointId(cur)).value();
                if makespan.value() + delta > d + 1e-9 {
                    continue;
                }
                assignment[t.index()] = PointId(next);
                let (c, mk) = engine.cost(&order, &assignment);
                assignment[t.index()] = PointId(cur);
                if c.value() < cost.value() - 1e-9 && best.is_none_or(|(_, bc, _)| c.value() < bc) {
                    best = Some((Move::Point(t.index(), next), c.value(), mk.value()));
                }
            }
        }

        match best {
            Some((Move::Swap(k), c, mk)) => {
                order.swap(k, k + 1);
                cost = MilliAmpMinutes::new(c);
                makespan = Minutes::new(mk);
                stats.swaps += 1;
            }
            Some((Move::Point(t, j), c, mk)) => {
                assignment[t] = PointId(j);
                cost = MilliAmpMinutes::new(c);
                makespan = Minutes::new(mk);
                stats.point_moves += 1;
            }
            None => break,
        }
    }

    Ok(Refined {
        schedule: Schedule::new(order, assignment),
        cost,
        makespan,
        stats,
    })
}

/// Convenience: run the paper's algorithm and then polish the result.
///
/// # Errors
///
/// Propagates [`crate::algorithm::schedule`]'s errors.
pub fn schedule_refined(
    g: &TaskGraph,
    deadline: Minutes,
    config: &SchedulerConfig,
    max_passes: usize,
) -> Result<Refined, SchedulerError> {
    schedule_refined_in(
        g,
        deadline,
        config,
        max_passes,
        &mut crate::algorithm::SolverWorkspace::new(),
    )
}

/// [`schedule_refined`] with caller-owned solver buffers: both stages
/// reuse `ws` across calls — the solve stage's window-search scratch
/// (σ cache, carried repair journal, assignment and window-carry buffers)
/// mirroring [`schedule_in`](crate::algorithm::schedule_in), and the
/// refinement stage's probe engine through
/// [`refine_schedule_in`] (rebuilt only when the graph catalogue or model
/// changes), so a long-lived worker stays allocation-free across requests
/// end to end.
///
/// # Errors
///
/// Propagates [`crate::algorithm::schedule`]'s errors.
pub fn schedule_refined_in(
    g: &TaskGraph,
    deadline: Minutes,
    config: &SchedulerConfig,
    max_passes: usize,
    ws: &mut crate::algorithm::SolverWorkspace,
) -> Result<Refined, SchedulerError> {
    let sol = crate::algorithm::schedule_in(g, deadline, config, ws)?;
    refine_schedule_in(g, &sol.schedule, deadline, config, max_passes, ws)
}

#[cfg(test)]
mod tests {
    use super::*;
    use batsched_taskgraph::paper::{g2, g3};
    use batsched_taskgraph::topo::topological_order;

    #[test]
    fn refinement_never_hurts_and_stays_valid() {
        let cfg = SchedulerConfig::paper();
        for (g, d) in [(g2(), 75.0), (g3(), 230.0)] {
            let d = Minutes::new(d);
            let sol = crate::algorithm::schedule(&g, d, &cfg).unwrap();
            let refined = refine_schedule(&g, &sol.schedule, d, &cfg, 64).unwrap();
            refined.schedule.validate(&g, Some(d)).unwrap();
            assert!(refined.cost.value() <= sol.cost.value() + 1e-9);
        }
    }

    #[test]
    fn refinement_substantially_improves_a_bad_start() {
        // All tasks at the fastest point in plain topological order leaves
        // lots of slack; refinement must recover a large chunk of it.
        let g = g3();
        let d = Minutes::new(230.0);
        let cfg = SchedulerConfig::paper();
        let start = Schedule::new(topological_order(&g), vec![PointId(0); g.task_count()]);
        let model = cfg.battery_model().unwrap();
        let before = start.battery_cost(&g, &model).value();
        let refined = refine_schedule(&g, &start, d, &cfg, 256).unwrap();
        refined.schedule.validate(&g, Some(d)).unwrap();
        assert!(
            refined.cost.value() < before * 0.5,
            "bad start {before} should at least halve, got {}",
            refined.cost
        );
        assert!(refined.stats.point_moves > 0);
    }

    #[test]
    fn refinement_is_deterministic_and_terminates() {
        let g = g2();
        let d = Minutes::new(75.0);
        let cfg = SchedulerConfig::paper();
        let a = schedule_refined(&g, d, &cfg, 64).unwrap();
        let b = schedule_refined(&g, d, &cfg, 64).unwrap();
        assert_eq!(a, b);
        assert!(a.stats.passes <= 64);
    }

    #[test]
    fn workspace_reuse_matches_fresh_buffers() {
        // One long-lived workspace refining alternating instances (the
        // service-worker pattern) must match fresh-buffer runs exactly.
        let cfg = SchedulerConfig::paper();
        let mut ws = crate::algorithm::SolverWorkspace::new();
        let ga = g2();
        let gb = g3();
        let a1 = schedule_refined_in(&ga, Minutes::new(75.0), &cfg, 64, &mut ws).unwrap();
        let b1 = schedule_refined_in(&gb, Minutes::new(230.0), &cfg, 64, &mut ws).unwrap();
        let a2 = schedule_refined_in(&ga, Minutes::new(75.0), &cfg, 64, &mut ws).unwrap();
        assert_eq!(
            a1,
            schedule_refined(&ga, Minutes::new(75.0), &cfg, 64).unwrap()
        );
        assert_eq!(
            b1,
            schedule_refined(&gb, Minutes::new(230.0), &cfg, 64).unwrap()
        );
        assert_eq!(a1, a2);
    }

    #[test]
    fn zero_passes_is_identity() {
        let g = g2();
        let d = Minutes::new(75.0);
        let cfg = SchedulerConfig::paper();
        let sol = crate::algorithm::schedule(&g, d, &cfg).unwrap();
        let r = refine_schedule(&g, &sol.schedule, d, &cfg, 0).unwrap();
        assert_eq!(r.schedule, sol.schedule);
        assert_eq!(r.stats, RefineStats::default());
    }

    #[test]
    fn swaps_respect_precedence() {
        // On a chain no swap is ever legal; only point moves may fire.
        let mut b = TaskGraph::builder();
        let dp = |i: f64, d: f64| {
            batsched_taskgraph::DesignPoint::new(
                batsched_battery::units::MilliAmps::new(i),
                Minutes::new(d),
            )
        };
        let t1 = b.task("a", vec![dp(500.0, 1.0), dp(100.0, 2.0)]);
        let t2 = b.task("b", vec![dp(400.0, 1.0), dp(90.0, 2.0)]);
        let t3 = b.task("c", vec![dp(300.0, 1.0), dp(80.0, 2.0)]);
        b.edge(t1, t2).edge(t2, t3);
        let g = b.build().unwrap();
        let cfg = SchedulerConfig::paper();
        let start = Schedule::new(vec![t1, t2, t3], vec![PointId(0); 3]);
        let r = refine_schedule(&g, &start, Minutes::new(6.0), &cfg, 64).unwrap();
        assert_eq!(r.stats.swaps, 0);
        assert_eq!(r.schedule.order(), &[t1, t2, t3]);
        r.schedule.validate(&g, Some(Minutes::new(6.0))).unwrap();
    }
}
