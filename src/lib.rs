//! # batsched
//!
//! A complete Rust implementation of *"An Iterative Algorithm for
//! Battery-Aware Task Scheduling on Portable Computing Platforms"*
//! (Jawad Khan & Ranga Vemuri, DATE 2005), together with every substrate
//! the paper depends on:
//!
//! * [`battery`] — the Rakhmatov–Vrudhula analytical battery model (the
//!   paper's eq. 1) plus coulomb-counting, Peukert and KiBaM references;
//! * [`taskgraph`] — DAG workloads with per-task design points, the paper's
//!   G2/G3 instances and five synthetic-graph generators;
//! * [`core`] — the iterative sequencing + design-point-assignment
//!   heuristic itself (`BatteryAwareSQNDPAllocation`);
//! * [`baselines`] — the Rakhmatov DP comparison of the paper's Table 4,
//!   Chowdhury scaling, exhaustive optimum, simulated annealing;
//! * [`sim`] — discrete-event execution with DVS/FPGA switch overheads and
//!   battery depletion events;
//! * [`service`] — the concurrent batch-scheduling daemon: canonical wire
//!   format, worker pool with reusable solver state, LRU result cache,
//!   JSONL and HTTP frontends (see `docs/SERVICE.md`).
//!
//! ## Quick start
//!
//! ```
//! use batsched::prelude::*;
//!
//! // The paper's robotic-arm case study (9 tasks, 4 design points each).
//! let graph = batsched::taskgraph::paper::g2();
//!
//! // Sequence the tasks and pick a design point for each so the 75-minute
//! // deadline holds and battery charge is minimised.
//! let solution = schedule(&graph, Minutes::new(75.0), &SchedulerConfig::paper())?;
//!
//! assert!(solution.makespan.value() <= 75.0);
//! println!("σ = {:.0}, plan: {}", solution.cost.value(), solution.schedule.display(&graph));
//! # Ok::<(), batsched::SchedulerError>(())
//! ```
//!
//! The reproduction harness (`cargo run -p batsched-bench --bin
//! repro_table4` and friends) regenerates every table and figure of the
//! paper; `EXPERIMENTS.md` records paper-vs-measured for each.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use batsched_baselines as baselines;
pub use batsched_battery as battery;
pub use batsched_core as core;
pub use batsched_service as service;
pub use batsched_sim as sim;
pub use batsched_taskgraph as taskgraph;

pub use batsched_core::{
    schedule, FactorMask, InitialWeight, Schedule, SchedulerConfig, SchedulerError, Solution,
};

/// One-stop import for applications.
pub mod prelude {
    pub use batsched_baselines::Scheduler;
    pub use batsched_battery::prelude::*;
    pub use batsched_core::prelude::*;
    pub use batsched_taskgraph::prelude::*;
}
