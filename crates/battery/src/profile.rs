//! Piecewise-constant current discharge profiles.
//!
//! A [`LoadProfile`] is the battery models' view of a schedule: a sequence of
//! non-overlapping intervals, each drawing a constant current. Gaps between
//! intervals are rest periods (zero current) during which a non-ideal battery
//! recovers part of its transiently unavailable charge.
//!
//! ```
//! use batsched_battery::profile::LoadProfile;
//! use batsched_battery::units::{MilliAmps, Minutes};
//!
//! let mut p = LoadProfile::new();
//! p.push(Minutes::new(5.0), MilliAmps::new(120.0))?;
//! p.push_rest(Minutes::new(2.0))?;
//! p.push(Minutes::new(3.0), MilliAmps::new(40.0))?;
//! assert_eq!(p.end(), Minutes::new(10.0));
//! assert_eq!(p.direct_charge().value(), 120.0 * 5.0 + 40.0 * 3.0);
//! # Ok::<(), batsched_battery::profile::ProfileError>(())
//! ```

use crate::units::{MilliAmpMinutes, MilliAmps, Minutes};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One constant-current discharge interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Start time of the interval.
    pub start: Minutes,
    /// Strictly positive duration.
    pub duration: Minutes,
    /// Constant current drawn over the interval (non-negative).
    pub current: MilliAmps,
}

impl Interval {
    /// End instant of the interval.
    #[inline]
    pub fn end(&self) -> Minutes {
        self.start + self.duration
    }

    /// Charge drawn over the whole interval.
    #[inline]
    pub fn charge(&self) -> MilliAmpMinutes {
        self.current * self.duration
    }
}

/// Errors raised while building or editing a [`LoadProfile`].
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileError {
    /// An interval duration was zero, negative, NaN or infinite.
    NonPositiveDuration {
        /// The offending duration.
        duration: Minutes,
    },
    /// A current was negative, NaN or infinite.
    InvalidCurrent {
        /// The offending current.
        current: MilliAmps,
    },
    /// An explicitly placed interval overlaps an existing one.
    Overlap {
        /// Start of the rejected interval.
        start: Minutes,
    },
    /// A start time was negative or not finite.
    InvalidStart {
        /// The offending start time.
        start: Minutes,
    },
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonPositiveDuration { duration } => {
                write!(
                    f,
                    "interval duration must be positive and finite, got {duration}"
                )
            }
            Self::InvalidCurrent { current } => {
                write!(
                    f,
                    "interval current must be non-negative and finite, got {current}"
                )
            }
            Self::Overlap { start } => {
                write!(
                    f,
                    "interval starting at {start} overlaps an existing interval"
                )
            }
            Self::InvalidStart { start } => {
                write!(
                    f,
                    "interval start must be non-negative and finite, got {start}"
                )
            }
        }
    }
}

impl std::error::Error for ProfileError {}

/// A validated, time-ordered sequence of constant-current intervals.
///
/// Invariants (enforced by every constructor and mutator):
/// * intervals are sorted by start time and never overlap;
/// * every duration is strictly positive and finite;
/// * every current is non-negative and finite.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LoadProfile {
    intervals: Vec<Interval>,
    /// Running end of the last interval or rest (supports `push`).
    cursor: Minutes,
}

impl LoadProfile {
    /// Creates an empty profile starting at `t = 0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty profile with room for `n` intervals, avoiding
    /// reallocation when the final interval count is known up front.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            intervals: Vec::with_capacity(n),
            cursor: Minutes::ZERO,
        }
    }

    /// Builds a contiguous profile from `(duration, current)` steps starting
    /// at `t = 0`. Zero-current steps become rest gaps.
    ///
    /// # Errors
    ///
    /// Returns the first validation error encountered.
    pub fn from_steps<I>(steps: I) -> Result<Self, ProfileError>
    where
        I: IntoIterator<Item = (Minutes, MilliAmps)>,
    {
        let mut p = Self::new();
        for (duration, current) in steps {
            if current == MilliAmps::ZERO {
                p.push_rest(duration)?;
            } else {
                p.push(duration, current)?;
            }
        }
        Ok(p)
    }

    /// Appends a loaded interval at the running cursor.
    ///
    /// # Errors
    ///
    /// * [`ProfileError::NonPositiveDuration`] for `duration <= 0` or non-finite.
    /// * [`ProfileError::InvalidCurrent`] for negative or non-finite current.
    pub fn push(&mut self, duration: Minutes, current: MilliAmps) -> Result<(), ProfileError> {
        validate_duration(duration)?;
        validate_current(current)?;
        let start = self.cursor;
        self.intervals.push(Interval {
            start,
            duration,
            current,
        });
        self.cursor = start + duration;
        Ok(())
    }

    /// Appends a rest period (no interval is stored; the cursor advances).
    ///
    /// # Errors
    ///
    /// [`ProfileError::NonPositiveDuration`] for `duration <= 0` or non-finite.
    pub fn push_rest(&mut self, duration: Minutes) -> Result<(), ProfileError> {
        validate_duration(duration)?;
        self.cursor += duration;
        Ok(())
    }

    /// Inserts an interval at an explicit start time.
    ///
    /// # Errors
    ///
    /// All [`ProfileError`] variants are possible; in particular
    /// [`ProfileError::Overlap`] when the new interval intersects an existing
    /// one.
    pub fn insert(
        &mut self,
        start: Minutes,
        duration: Minutes,
        current: MilliAmps,
    ) -> Result<(), ProfileError> {
        if !(start.is_finite() && start.is_non_negative()) {
            return Err(ProfileError::InvalidStart { start });
        }
        validate_duration(duration)?;
        validate_current(current)?;
        let end = start + duration;
        let idx = self
            .intervals
            .partition_point(|iv| iv.start.value() < start.value());
        if idx > 0 && self.intervals[idx - 1].end().value() > start.value() {
            return Err(ProfileError::Overlap { start });
        }
        if idx < self.intervals.len() && self.intervals[idx].start.value() < end.value() {
            return Err(ProfileError::Overlap { start });
        }
        self.intervals.insert(
            idx,
            Interval {
                start,
                duration,
                current,
            },
        );
        self.cursor = self.cursor.max(end);
        Ok(())
    }

    /// The intervals in time order.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Number of loaded intervals (rest gaps are not counted).
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// `true` when the profile has no loaded intervals.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// End of the profile: the running cursor (covers trailing rest) or the
    /// end of the last interval, whichever is later.
    pub fn end(&self) -> Minutes {
        let last_end = self
            .intervals
            .last()
            .map(Interval::end)
            .unwrap_or(Minutes::ZERO);
        self.cursor.max(last_end)
    }

    /// Total charge actually delivered to the load (∫ I dt), ignoring
    /// battery non-idealities.
    pub fn direct_charge(&self) -> MilliAmpMinutes {
        self.intervals.iter().map(Interval::charge).sum()
    }

    /// Charge delivered up to `t` (clipping any interval in progress).
    pub fn direct_charge_until(&self, t: Minutes) -> MilliAmpMinutes {
        self.intervals
            .iter()
            .filter(|iv| iv.start.value() < t.value())
            .map(|iv| {
                let effective = iv.duration.min(t - iv.start);
                iv.current * effective
            })
            .sum()
    }

    /// Highest instantaneous current in the profile.
    pub fn peak_current(&self) -> MilliAmps {
        self.intervals
            .iter()
            .map(|iv| iv.current)
            .fold(MilliAmps::ZERO, MilliAmps::max)
    }

    /// Mean current over `[0, end()]` (rest periods included as zero load).
    pub fn mean_current(&self) -> MilliAmps {
        let end = self.end();
        if end == Minutes::ZERO {
            MilliAmps::ZERO
        } else {
            self.direct_charge() / end
        }
    }

    /// Current drawn at instant `t` (zero in gaps and outside the profile).
    pub fn current_at(&self, t: Minutes) -> MilliAmps {
        match self
            .intervals
            .partition_point(|iv| iv.start.value() <= t.value())
        {
            0 => MilliAmps::ZERO,
            idx => {
                let iv = &self.intervals[idx - 1];
                if t.value() < iv.end().value() {
                    iv.current
                } else {
                    MilliAmps::ZERO
                }
            }
        }
    }

    /// Count of consecutive interval pairs whose current increases — the raw
    /// statistic behind the paper's *Current Increase Fraction*.
    pub fn rising_transitions(&self) -> usize {
        self.intervals
            .windows(2)
            .filter(|w| w[0].current.value() < w[1].current.value())
            .count()
    }

    /// Returns a profile with the same steps in reverse order, re-anchored at
    /// `t = 0` with the original gap structure preserved. Useful for
    /// demonstrating the battery model's order sensitivity.
    pub fn reversed(&self) -> LoadProfile {
        let end = self.end();
        let mut intervals: Vec<Interval> = self
            .intervals
            .iter()
            .map(|iv| Interval {
                start: end - iv.end(),
                duration: iv.duration,
                current: iv.current,
            })
            .collect();
        intervals.sort_by(|a, b| crate::units::total_cmp(a.start.value(), b.start.value()));
        LoadProfile {
            intervals,
            cursor: end,
        }
    }
}

fn validate_duration(duration: Minutes) -> Result<(), ProfileError> {
    if duration.is_finite() && duration.value() > 0.0 {
        Ok(())
    } else {
        Err(ProfileError::NonPositiveDuration { duration })
    }
}

fn validate_current(current: MilliAmps) -> Result<(), ProfileError> {
    if current.is_finite() && current.is_non_negative() {
        Ok(())
    } else {
        Err(ProfileError::InvalidCurrent { current })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn min(v: f64) -> Minutes {
        Minutes::new(v)
    }
    fn ma(v: f64) -> MilliAmps {
        MilliAmps::new(v)
    }

    #[test]
    fn push_appends_contiguously() {
        let mut p = LoadProfile::new();
        p.push(min(5.0), ma(100.0)).unwrap();
        p.push(min(3.0), ma(50.0)).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.intervals()[1].start, min(5.0));
        assert_eq!(p.end(), min(8.0));
    }

    #[test]
    fn rest_advances_cursor_without_interval() {
        let mut p = LoadProfile::new();
        p.push(min(5.0), ma(100.0)).unwrap();
        p.push_rest(min(2.0)).unwrap();
        p.push(min(1.0), ma(10.0)).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.intervals()[1].start, min(7.0));
        assert_eq!(p.end(), min(8.0));
    }

    #[test]
    fn trailing_rest_extends_end() {
        let mut p = LoadProfile::new();
        p.push(min(5.0), ma(100.0)).unwrap();
        p.push_rest(min(10.0)).unwrap();
        assert_eq!(p.end(), min(15.0));
        assert_eq!(p.direct_charge(), MilliAmpMinutes::new(500.0));
    }

    #[test]
    fn rejects_bad_durations_and_currents() {
        let mut p = LoadProfile::new();
        assert!(matches!(
            p.push(min(0.0), ma(1.0)),
            Err(ProfileError::NonPositiveDuration { .. })
        ));
        assert!(matches!(
            p.push(min(-1.0), ma(1.0)),
            Err(ProfileError::NonPositiveDuration { .. })
        ));
        assert!(matches!(
            p.push(min(f64::NAN), ma(1.0)),
            Err(ProfileError::NonPositiveDuration { .. })
        ));
        assert!(matches!(
            p.push(min(1.0), ma(-2.0)),
            Err(ProfileError::InvalidCurrent { .. })
        ));
        assert!(matches!(
            p.push(min(1.0), ma(f64::INFINITY)),
            Err(ProfileError::InvalidCurrent { .. })
        ));
        assert!(p.is_empty());
    }

    #[test]
    fn insert_rejects_overlap() {
        let mut p = LoadProfile::new();
        p.insert(min(0.0), min(5.0), ma(10.0)).unwrap();
        p.insert(min(10.0), min(5.0), ma(10.0)).unwrap();
        assert!(matches!(
            p.insert(min(4.0), min(2.0), ma(1.0)),
            Err(ProfileError::Overlap { .. })
        ));
        assert!(matches!(
            p.insert(min(8.0), min(4.0), ma(1.0)),
            Err(ProfileError::Overlap { .. })
        ));
        // Exactly abutting is allowed.
        p.insert(min(5.0), min(5.0), ma(1.0)).unwrap();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn insert_out_of_order_keeps_sorted() {
        let mut p = LoadProfile::new();
        p.insert(min(10.0), min(2.0), ma(5.0)).unwrap();
        p.insert(min(0.0), min(2.0), ma(7.0)).unwrap();
        let starts: Vec<f64> = p.intervals().iter().map(|iv| iv.start.value()).collect();
        assert_eq!(starts, vec![0.0, 10.0]);
    }

    #[test]
    fn charge_accounting() {
        let p = LoadProfile::from_steps([
            (min(5.0), ma(100.0)),
            (min(5.0), ma(0.0)), // rest
            (min(5.0), ma(60.0)),
        ])
        .unwrap();
        assert_eq!(p.direct_charge(), MilliAmpMinutes::new(800.0));
        assert_eq!(p.direct_charge_until(min(2.5)), MilliAmpMinutes::new(250.0));
        assert_eq!(p.direct_charge_until(min(7.0)), MilliAmpMinutes::new(500.0));
        assert_eq!(
            p.direct_charge_until(min(12.0)),
            MilliAmpMinutes::new(620.0)
        );
        assert_eq!(p.direct_charge_until(min(100.0)), p.direct_charge());
    }

    #[test]
    fn current_lookup() {
        let p = LoadProfile::from_steps([
            (min(5.0), ma(100.0)),
            (min(5.0), ma(0.0)),
            (min(5.0), ma(60.0)),
        ])
        .unwrap();
        assert_eq!(p.current_at(min(0.0)), ma(100.0));
        assert_eq!(p.current_at(min(4.999)), ma(100.0));
        assert_eq!(p.current_at(min(6.0)), ma(0.0));
        assert_eq!(p.current_at(min(11.0)), ma(60.0));
        assert_eq!(p.current_at(min(99.0)), ma(0.0));
    }

    #[test]
    fn mean_and_peak() {
        let p = LoadProfile::from_steps([(min(5.0), ma(100.0)), (min(5.0), ma(50.0))]).unwrap();
        assert_eq!(p.peak_current(), ma(100.0));
        assert_eq!(p.mean_current(), ma(75.0));
        assert_eq!(LoadProfile::new().mean_current(), MilliAmps::ZERO);
    }

    #[test]
    fn rising_transitions_counts_increases() {
        let p = LoadProfile::from_steps([
            (min(1.0), ma(50.0)),
            (min(1.0), ma(100.0)),
            (min(1.0), ma(100.0)),
            (min(1.0), ma(30.0)),
            (min(1.0), ma(40.0)),
        ])
        .unwrap();
        assert_eq!(p.rising_transitions(), 2);
    }

    #[test]
    fn reversal_preserves_charge_and_span() {
        let p = LoadProfile::from_steps([
            (min(2.0), ma(10.0)),
            (min(3.0), ma(0.0)),
            (min(4.0), ma(90.0)),
        ])
        .unwrap();
        let r = p.reversed();
        assert_eq!(r.direct_charge(), p.direct_charge());
        assert_eq!(r.end(), p.end());
        assert_eq!(r.intervals()[0].current, ma(90.0));
        assert_eq!(r.intervals()[0].start, Minutes::ZERO);
        assert_eq!(r.intervals()[1].start, min(7.0));
    }

    #[test]
    fn serde_round_trip() {
        let p = LoadProfile::from_steps([(min(2.0), ma(10.0)), (min(4.0), ma(90.0))]).unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: LoadProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
