//! # batsched-service
//!
//! A concurrent batch-scheduling daemon over the DATE'05 battery-aware
//! scheduler: accept scheduling requests, solve them on a worker pool,
//! answer duplicates from a result cache.
//!
//! The pieces, bottom-up:
//!
//! * [`wire`] — the versioned JSON request/response format with a stable
//!   canonical rendering and FNV-1a content hash (the cache key), hashed
//!   in one streaming pass (no canonical String is materialised);
//! * [`wire_bin`] — the binary wire format (`application/x-batsched-bin`):
//!   a length-prefixed encoding whose single-pass decoder folds canonical
//!   content hashing into the same byte walk, so binary and JSON spellings
//!   of one request share a cache key byte-for-byte;
//! * [`cache`] — the memory cache tier: an O(1) intrusive-list LRU,
//!   sharded across independently locked shards by content-hash bits
//!   (hit = bit-identical replay);
//! * [`disk`] — the persistent cache tier: an append-only JSONL file,
//!   indexed on start and compacted on shutdown, so a restarted daemon
//!   answers previously-seen requests warm;
//! * [`service`] — bounded job queue + worker threads, each with a
//!   reusable [`batsched_core::SolverWorkspace`] (σ-engine scratch *and*
//!   the window search's incremental-DPF journal and assignment buffers,
//!   since PR 3) so steady-state solving stays allocation-free end to
//!   end, plus stats counters and graceful shutdown;
//! * [`jsonl`] — the stdio/pipe frontend (one document per line);
//! * [`http`] — a dependency-free HTTP/1.1 frontend on `std::net` with
//!   keep-alive connections and strict request framing;
//! * [`fleet`] — fleet-scale serving: a front-tier router that spawns and
//!   supervises N worker processes, routes each request by folded
//!   content-hash bits to a consistent worker slice, and retries failed
//!   exchanges onto surviving workers (idempotency-by-content-hash makes
//!   the retry safe);
//! * [`faults`] — the fault-injection plane chaos tests arm to drive the
//!   failure paths (worker panics, slow solves, disk errors) on purpose;
//! * [`metrics`] — hand-rolled fixed-boundary log-bucket histograms and
//!   the Prometheus text rendering behind `GET /v1/metrics`;
//! * [`trace`] — request trace ids (client-supplied or generated),
//!   per-stage timing accumulation, and the one-span-per-request JSON
//!   rendering;
//! * [`logfmt`] — the span-log sink: level filter, per-second rate
//!   limit, file or stderr target (`--log-json`).
//!
//! The service is built to fail partially, never totally: a panicking
//! solve answers a typed `internal` error and the worker is respawned, a
//! configured request deadline answers `timeout` instead of hanging a
//! connection, and a sick disk tier trips a breaker (degraded mode:
//! memory + cold solves) that periodically re-probes until it heals.
//!
//! Backpressure is explicit: the queue is bounded and a full queue answers
//! `overloaded` immediately rather than queueing without limit.
//!
//! ```
//! use batsched_service::prelude::*;
//! use batsched_taskgraph::paper::g2;
//!
//! let svc = Service::start(ServiceConfig::default());
//! let body = serde_json::to_string(&ScheduleRequest::new(g2(), 75.0)).unwrap();
//! let cold = svc.call(body.clone());
//! let warm = svc.call(body);
//! assert_eq!(cold.body, warm.body); // the cache replays bit-identically
//! assert!(matches!(warm.disposition, Disposition::Ok { cached: true }));
//! svc.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod disk;
pub mod faults;
pub mod fleet;
pub mod http;
pub mod jsonl;
pub mod logfmt;
pub mod metrics;
pub mod service;
pub mod trace;
pub mod wire;
pub mod wire_bin;

pub use cache::{LruCache, ShardedCache};
pub use disk::{DiskFormat, DiskTier, FsyncPolicy};
pub use faults::{FaultPlane, FaultRule, FaultSite};
pub use fleet::{
    home_slot, route, shard_path, Fleet, FleetConfig, FleetConfigError, FleetStartError,
    FleetStatus, InProcessLauncher, ProcessLauncher, WorkerHandle, WorkerLauncher, WorkerStatus,
};
pub use http::HttpServer;
pub use jsonl::{run_jsonl, JsonlSummary};
pub use logfmt::{Level, LogTarget, SpanLog};
pub use metrics::{Histogram, HistogramSnapshot, BUCKET_BOUNDS_US};
pub use service::{
    solve, ConfigError, Disposition, Reply, Service, ServiceConfig, StartError, StatsSnapshot,
};
pub use trace::{RequestTrace, Span};
pub use wire::{
    parse_request, ErrorResponse, ModelSpec, ScheduleRequest, ScheduleResponse, WireError,
    WIRE_VERSION,
};
pub use wire_bin::{decode_request, decode_response, encode_request, encode_response, WireFormat};

/// Convenient glob-import of the types almost every embedder needs.
pub mod prelude {
    pub use crate::disk::{DiskFormat, FsyncPolicy};
    pub use crate::faults::{FaultPlane, FaultRule, FaultSite};
    pub use crate::fleet::{Fleet, FleetConfig, InProcessLauncher, ProcessLauncher};
    pub use crate::http::HttpServer;
    pub use crate::jsonl::run_jsonl;
    pub use crate::service::{Disposition, Reply, Service, ServiceConfig, StartError};
    pub use crate::wire::{
        parse_request, ErrorResponse, ModelSpec, ScheduleRequest, ScheduleResponse,
    };
    pub use crate::wire_bin::{decode_request, encode_request, WireFormat};
}
