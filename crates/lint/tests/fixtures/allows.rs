//! suppression-grammar fixture: well-formed allows, linted as serving.

fn suppressed_trailing(v: Option<u32>) -> u32 {
    v.unwrap() // lint:allow(panic-path): fixture — trailing allow on the line
}

fn suppressed_above(v: Option<u32>) -> u32 {
    // lint:allow(panic-path): fixture — standalone allow above the line,
    // with a reason that wraps onto a second comment line
    v.unwrap()
}

fn not_suppressed(v: Option<u32>) -> u32 {
    v.unwrap()
}
