//! Runtime of the battery models — σ evaluation is the inner loop of every
//! scheduler in the workspace, so its cost bounds everything else.

use batsched_battery::ideal::CoulombCounter;
use batsched_battery::kibam::KibamModel;
use batsched_battery::model::BatteryModel;
use batsched_battery::peukert::PeukertModel;
use batsched_battery::profile::LoadProfile;
use batsched_battery::rv::RvModel;
use batsched_battery::units::{MilliAmpMinutes, MilliAmps, Minutes};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn profile_of(n: usize) -> LoadProfile {
    // Deterministic pseudo-random staircase.
    let mut p = LoadProfile::new();
    let mut x = 0x2545F4914F6CDD1Du64;
    for _ in 0..n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let current = 20.0 + (x % 900) as f64;
        let duration = 0.5 + (x % 37) as f64 / 10.0;
        p.push(Minutes::new(duration), MilliAmps::new(current))
            .unwrap();
    }
    p
}

fn bench_sigma_by_profile_size(c: &mut Criterion) {
    let model = RvModel::date05();
    let mut group = c.benchmark_group("rv_sigma_profile_size");
    for n in [15usize, 100, 1000] {
        let p = profile_of(n);
        let end = p.end();
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| black_box(model.sigma(black_box(p), end)))
        });
    }
    group.finish();
}

fn bench_sigma_by_terms(c: &mut Criterion) {
    let p = profile_of(100);
    let end = p.end();
    let mut group = c.benchmark_group("rv_sigma_series_terms");
    for terms in [1usize, 10, 100] {
        let model = RvModel::new(0.273, terms).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(terms), &model, |b, m| {
            b.iter(|| black_box(m.sigma(&p, end)))
        });
    }
    group.finish();
}

fn bench_models(c: &mut Criterion) {
    let p = profile_of(100);
    let end = p.end();
    let models: Vec<(&str, Box<dyn BatteryModel>)> = vec![
        ("coulomb", Box::new(CoulombCounter::new())),
        ("rv10", Box::new(RvModel::date05())),
        (
            "peukert",
            Box::new(PeukertModel::lithium_ion(MilliAmps::new(100.0))),
        ),
        (
            "kibam",
            Box::new(KibamModel::new(0.5, 0.05, MilliAmpMinutes::new(1e6)).unwrap()),
        ),
    ];
    let mut group = c.benchmark_group("apparent_charge_models");
    for (name, m) in &models {
        group.bench_function(*name, |b| b.iter(|| black_box(m.apparent_charge(&p, end))));
    }
    group.finish();
}

fn bench_lifetime(c: &mut Criterion) {
    let p = profile_of(200);
    let model = RvModel::date05();
    // Capacity chosen so death occurs mid-profile.
    let cap = model.sigma(&p, p.end() * 0.5);
    c.bench_function("rv_lifetime_scan_bisect", |b| {
        b.iter(|| black_box(model.lifetime(&p, cap)))
    });
}

criterion_group!(
    benches,
    bench_sigma_by_profile_size,
    bench_sigma_by_terms,
    bench_models,
    bench_lifetime
);
criterion_main!(benches);
