//! # batsched-sim
//!
//! Discrete-event execution of battery-aware schedules on explicit platform
//! models. Where [`batsched_core`] *plans* (assuming the paper's idealised
//! platform: free design-point switches, no idle draw), this crate *runs*
//! the plan: it expands a schedule into the physical load profile — task
//! intervals plus DVS voltage-transition or FPGA bitstream-reconfiguration
//! intervals — tracks the battery's apparent charge through the mission, and
//! reports task events, battery depletion and deadline misses.
//!
//! ```
//! use batsched_sim::{Simulator};
//! use batsched_core::{schedule, SchedulerConfig};
//! use batsched_battery::rv::RvModel;
//! use batsched_battery::units::{MilliAmpMinutes, Minutes};
//!
//! let g = batsched_taskgraph::paper::g2();
//! let plan = schedule(&g, Minutes::new(75.0), &SchedulerConfig::paper())?;
//! let sim = Simulator::paper(MilliAmpMinutes::new(50_000.0), Some(Minutes::new(75.0)));
//! let report = sim.run(&g, &plan.schedule, &RvModel::date05());
//! assert!(report.success);
//! # Ok::<(), batsched_core::SchedulerError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod monte_carlo;
pub mod platform;

pub use engine::{SimEvent, SimReport, Simulator, SocSample};
pub use monte_carlo::{DurationJitter, MissionSampler, MonteCarloReport};
pub use platform::{Platform, PlatformKind, TransitionCost};
