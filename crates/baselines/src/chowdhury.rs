//! The Chowdhury–Chakrabarti heuristic (SiPS 2001), reference \[7\] of the
//! paper: *"reduce the voltage level of the tasks as much as possible,
//! starting from the last task in the schedule."*
//!
//! Rationale (proved in \[7\] and quoted by the DATE'05 paper §3): given two
//! identical tasks and one unit of slack, spending the slack on the *later*
//! task always recovers more battery charge. So walk the schedule backwards,
//! greedily down-scaling each task as far as the remaining slack allows.

use crate::Scheduler;
use batsched_battery::units::Minutes;
use batsched_core::{Schedule, SchedulerError};
use batsched_taskgraph::analysis::average_current;
use batsched_taskgraph::topo::list_schedule;
use batsched_taskgraph::{PointId, TaskGraph};

/// Backward greedy voltage scaling over a fixed list schedule.
#[derive(Debug, Clone, Default)]
pub struct ChowdhuryScaling;

impl Scheduler for ChowdhuryScaling {
    fn name(&self) -> &'static str {
        "chowdhury-scaling"
    }

    /// # Errors
    ///
    /// [`SchedulerError::DeadlineInfeasible`] when even all-fastest misses
    /// the deadline; [`SchedulerError::InvalidDeadline`] for bad deadlines.
    fn schedule(&self, g: &TaskGraph, deadline: Minutes) -> Result<Schedule, SchedulerError> {
        if !(deadline.is_finite() && deadline.value() > 0.0) {
            return Err(SchedulerError::InvalidDeadline { deadline });
        }
        // [7] assumes the sequence is given; we use the same decreasing-
        // average-current list schedule as the paper's initial sequence so
        // the comparison isolates the design-point policy.
        let order = list_schedule(g, |g, t| average_current(g, t).value());

        let m = g.point_count();
        let mut assignment = vec![PointId(0); g.task_count()];
        let mut total: f64 = order
            .iter()
            .map(|&t| g.duration(t, PointId(0)).value())
            .sum();
        if total > deadline.value() + 1e-9 {
            return Err(SchedulerError::DeadlineInfeasible {
                fastest: Minutes::new(total),
                deadline,
            });
        }
        // Walk from the last task backwards, sinking each task to the
        // slowest point the residual slack allows.
        for &t in order.iter().rev() {
            let here = assignment[t.index()].index();
            let mut best = here;
            for j in (here + 1..m).rev() {
                let delta =
                    g.duration(t, PointId(j)).value() - g.duration(t, PointId(here)).value();
                if total + delta <= deadline.value() + 1e-9 {
                    best = j;
                    break; // columns are duration-sorted: the slowest fit wins
                }
            }
            total += g.duration(t, PointId(best)).value() - g.duration(t, PointId(here)).value();
            assignment[t.index()] = PointId(best);
        }
        Ok(Schedule::new(order, assignment))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batsched_battery::rv::RvModel;
    use batsched_taskgraph::paper::{g2, g3};

    #[test]
    fn meets_deadlines_on_paper_graphs() {
        let algo = ChowdhuryScaling;
        let g2 = g2();
        for d in batsched_taskgraph::paper::G2_TABLE4_DEADLINES {
            let s = algo.schedule(&g2, Minutes::new(d)).unwrap();
            s.validate(&g2, Some(Minutes::new(d))).unwrap();
        }
        let g3 = g3();
        for d in batsched_taskgraph::paper::G3_TABLE4_DEADLINES {
            let s = algo.schedule(&g3, Minutes::new(d)).unwrap();
            s.validate(&g3, Some(Minutes::new(d))).unwrap();
        }
    }

    #[test]
    fn later_tasks_get_the_slack_first() {
        // With a deadline that admits down-scaling only some tasks, the
        // tail of the schedule must be leaner than the head.
        let g = g3();
        let s = ChowdhuryScaling.schedule(&g, Minutes::new(100.0)).unwrap();
        let cols: Vec<usize> = s.order().iter().map(|&t| s.point_of(t).index()).collect();
        let n = cols.len();
        let head: f64 = cols[..n / 2].iter().sum::<usize>() as f64;
        let tail: f64 = cols[n - n / 2..].iter().sum::<usize>() as f64;
        assert!(
            tail >= head,
            "tail columns {tail} should be leaner than head {head}"
        );
    }

    #[test]
    fn infeasible_deadline_errors() {
        let g = g2();
        assert!(matches!(
            ChowdhuryScaling.schedule(&g, Minutes::new(40.0)),
            Err(SchedulerError::DeadlineInfeasible { .. })
        ));
        assert!(matches!(
            ChowdhuryScaling.schedule(&g, Minutes::new(-1.0)),
            Err(SchedulerError::InvalidDeadline { .. })
        ));
    }

    #[test]
    fn unconstrained_deadline_sinks_everything() {
        let g = g2();
        let s = ChowdhuryScaling.schedule(&g, Minutes::new(1e4)).unwrap();
        assert!(s
            .assignment()
            .iter()
            .all(|p| p.index() == g.point_count() - 1));
    }

    #[test]
    fn never_beats_nothing_but_is_reasonable() {
        // Sanity: its cost is finite and above the direct charge.
        let g = g3();
        let s = ChowdhuryScaling.schedule(&g, Minutes::new(230.0)).unwrap();
        let model = RvModel::date05();
        let cost = s.battery_cost(&g, &model);
        assert!(cost.value() > s.direct_charge(&g).value());
    }
}
