//! The rule registry and the five project-specific rules.
//!
//! Every rule works over the token stream from [`crate::lexer`] plus a
//! shared [`Ctx`] that precomputes the structural facts all rules need:
//! attribute spans, `#[cfg(test)]`/`#[test]` item spans (test-only code
//! is exempt from the serving-path rules), and function-body spans (the
//! scope unit for lock tracking and cap-dominance checks).
//!
//! See `docs/LINT.md` for the catalogue: which incident each rule
//! encodes, what it flags, and how to suppress a finding.

use crate::lexer::{Lexed, Tok, TokKind};
use crate::FileClass;

/// Registry of suppressible rule names, in reporting order.
pub const RULES: [&str; 5] = [
    "panic-path",
    "nested-lock",
    "uncapped-wire-alloc",
    "nondeterministic-iter",
    "crate-hygiene",
];

/// Meta-findings (not suppressible, never disabled).
pub const META_STALE_ALLOW: &str = "stale-allow";
pub const META_MALFORMED_ALLOW: &str = "malformed-allow";

/// One finding: rule, file, 1-based line, human message.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: String,
    pub message: String,
}

/// Structural context shared by all rules for one file.
pub struct Ctx<'a> {
    pub src: &'a str,
    pub toks: &'a [Tok],
    /// Token is inside a `#[...]` / `#![...]` attribute.
    in_attr: Vec<bool>,
    /// Token is inside a `#[cfg(test)]` / `#[test]` item.
    in_test: Vec<bool>,
    /// Function body spans as token-index ranges `[open_brace, close_brace]`.
    fns: Vec<(usize, usize)>,
}

impl<'a> Ctx<'a> {
    pub fn build(src: &'a str, lexed: &'a Lexed) -> Self {
        let toks = &lexed.toks[..];
        let n = toks.len();
        let mut in_attr = vec![false; n];
        let mut in_test = vec![false; n];

        // Attribute spans: `#` (optionally `!`) `[` … matching `]`.
        let mut i = 0usize;
        let mut attr_spans: Vec<(usize, usize)> = Vec::new();
        while i < n {
            if toks[i].is_punct('#') {
                let mut j = i + 1;
                if j < n && toks[j].is_punct('!') {
                    j += 1;
                }
                if j < n && toks[j].is_punct('[') {
                    let close = match_bracket(toks, j, '[', ']');
                    for f in in_attr.iter_mut().take(close + 1).skip(i) {
                        *f = true;
                    }
                    attr_spans.push((i, close));
                    i = close + 1;
                    continue;
                }
            }
            i += 1;
        }

        // Test item spans: an outer attribute whose idents contain `test`
        // (but not `not`, so `#[cfg(not(test))]` stays production code)
        // marks the item that follows, through its body or trailing `;`.
        for &(a, b) in &attr_spans {
            if a + 1 < n && toks[a + 1].is_punct('!') {
                continue; // inner attribute, attaches to the enclosing item
            }
            let mut has_test = false;
            let mut has_not = false;
            for t in &toks[a..=b] {
                if t.kind == TokKind::Ident {
                    match t.text(src) {
                        "test" => has_test = true,
                        "not" => has_not = true,
                        _ => {}
                    }
                }
            }
            if !has_test || has_not {
                continue;
            }
            // Skip any further attributes, then find the item extent.
            let mut j = b + 1;
            while j < n && in_attr[j] {
                j += 1;
            }
            let mut k = j;
            while k < n {
                if toks[k].is_punct(';') {
                    break;
                }
                if toks[k].is_punct('{') {
                    k = match_bracket(toks, k, '{', '}');
                    break;
                }
                k += 1;
            }
            for f in in_test.iter_mut().take(k.min(n - 1) + 1).skip(a) {
                *f = true;
            }
        }

        // Function body spans: `fn name … { … }`.
        let mut fns = Vec::new();
        let mut i = 0usize;
        while i < n {
            if toks[i].is_ident(src, "fn") && !in_attr[i] {
                let mut j = i + 1;
                while j < n && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                    j += 1;
                }
                if j < n && toks[j].is_punct('{') {
                    let close = match_bracket(toks, j, '{', '}');
                    fns.push((j, close));
                }
            }
            i += 1;
        }

        Ctx {
            src,
            toks,
            in_attr,
            in_test,
            fns,
        }
    }

    fn ident_at(&self, i: usize) -> Option<&'a str> {
        let t = self.toks.get(i)?;
        (t.kind == TokKind::Ident).then(|| t.text(self.src))
    }

    fn is_test(&self, i: usize) -> bool {
        self.in_test.get(i).copied().unwrap_or(false)
    }

    fn is_attr(&self, i: usize) -> bool {
        self.in_attr.get(i).copied().unwrap_or(false)
    }

    /// The function body span containing token `i`, if any (innermost).
    fn enclosing_fn(&self, i: usize) -> Option<(usize, usize)> {
        self.fns
            .iter()
            .filter(|&&(a, b)| a <= i && i <= b)
            .max_by_key(|&&(a, _)| a)
            .copied()
    }
}

/// Index of the bracket matching `toks[open]` (which must be `open_c`);
/// clamps to the last token on unbalanced input.
fn match_bracket(toks: &[Tok], open: usize, open_c: char, close_c: char) -> usize {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(open_c) {
            depth += 1;
        } else if t.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Runs every enabled rule over one lexed file.
pub fn run_rules(
    file: &str,
    class: &FileClass,
    ctx: &Ctx<'_>,
    enabled: impl Fn(&str) -> bool,
    out: &mut Vec<Finding>,
) {
    if class.serving && enabled(RULES[0]) {
        panic_path(file, ctx, out);
    }
    if enabled(RULES[1]) {
        nested_lock(file, ctx, out);
    }
    if class.decoder && enabled(RULES[2]) {
        uncapped_wire_alloc(file, ctx, out);
    }
    if class.bit_identity && enabled(RULES[3]) {
        nondeterministic_iter(file, ctx, out);
    }
    if enabled(RULES[4]) {
        crate_hygiene(file, class, ctx, out);
    }
}

fn push(out: &mut Vec<Finding>, file: &str, rule: &str, line: u32, message: String) {
    out.push(Finding {
        file: file.to_string(),
        line,
        rule: rule.to_string(),
        message,
    });
}

/// Keywords that can legally precede a `[` that is *not* an indexing
/// expression (array literals, types, loop headers).
const NON_INDEX_KEYWORDS: [&str; 17] = [
    "for", "in", "if", "else", "match", "return", "loop", "while", "break", "impl", "as", "mut",
    "ref", "move", "dyn", "where", "let",
];

/// Rule 1 — `panic-path` (PR 6): serving modules must not contain a
/// reachable panic. A panic outside the solver's `catch_unwind` boundary
/// kills a connection, router or supervisor thread. Flags `.unwrap()`,
/// `.expect(…)`, `panic!`, `unreachable!`, and direct slice indexing
/// `expr[…]` in expression position. Test-only code is exempt.
fn panic_path(file: &str, ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.is_test(i) || ctx.is_attr(i) {
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            let name = t.text(ctx.src);
            let prev_dot = i > 0 && toks[i - 1].is_punct('.');
            let next_paren = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
            let next_bang = toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
            if prev_dot && next_paren && (name == "unwrap" || name == "expect") {
                push(
                    out,
                    file,
                    RULES[0],
                    t.line,
                    format!(
                        ".{name}() in a request-serving module can panic past the \
                         solve-boundary catch_unwind; return a typed error or recover \
                         (poisoned locks: unwrap_or_else(|e| e.into_inner()))"
                    ),
                );
            } else if next_bang && (name == "panic" || name == "unreachable") {
                push(
                    out,
                    file,
                    RULES[0],
                    t.line,
                    format!("{name}! in a request-serving module kills the serving thread"),
                );
            }
        }
        // Direct indexing: `[` in expression position (previous token is
        // an identifier, `)` or `]`), excluding macros (`vec![`),
        // attributes, keywords and type positions.
        if t.is_punct('[') && i > 0 {
            let p = &toks[i - 1];
            let is_expr_pos = match p.kind {
                TokKind::Ident => {
                    let s = p.text(ctx.src);
                    !NON_INDEX_KEYWORDS.contains(&s)
                }
                TokKind::Punct(')') | TokKind::Punct(']') => true,
                _ => false,
            };
            if is_expr_pos {
                // Visibly-bounded indices are allowed: `xs[i % xs.len()]`,
                // `xs[i & MASK]`, `xs[i.min(n)]` confine the index
                // arithmetically; everything else must be `.get()`-checked
                // or annotated.
                let close = match_bracket(toks, i, '[', ']');
                let inner = &toks[i + 1..close];
                let bounded = inner
                    .iter()
                    .any(|x| x.is_punct('%') || x.is_punct('&') || x.is_ident(ctx.src, "min"));
                if !bounded {
                    push(
                        out,
                        file,
                        RULES[0],
                        t.line,
                        "direct slice indexing in a request-serving module panics on \
                         out-of-bounds; use .get()/.get_mut() with a typed error, bound \
                         the index visibly (% len / & mask / .min), or annotate"
                            .to_string(),
                    );
                }
            }
        }
    }
}

/// A live lock guard being tracked inside one function body.
struct Guard {
    /// Binding name (`None` for a statement-temporary guard).
    name: Option<String>,
    /// Brace depth at which the guard lives; popped when depth drops
    /// below it, at `;` for temporaries, or at `drop(name)`.
    depth: u32,
    temp: bool,
    line: u32,
}

/// Rule 2 — `nested-lock` (PR 5): the sharded cache's locks are taken
/// sequentially, never nested — a second `.lock()` while another guard is
/// live is an ordering hazard (deadlock with any other thread locking in
/// the opposite order). Tracks `let g = x.lock()…;` bindings,
/// statement-temporaries, `drop(g)`, and block scopes. Test code exempt.
fn nested_lock(file: &str, ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    for &(body_open, body_close) in &ctx.fns {
        if ctx.is_test(body_open) {
            continue;
        }
        // Skip bodies of *nested* fns: they are scanned as their own span.
        let inner: Vec<(usize, usize)> = ctx
            .fns
            .iter()
            .filter(|&&(a, b)| a > body_open && b < body_close)
            .copied()
            .collect();
        let mut guards: Vec<Guard> = Vec::new();
        let mut depth = 0u32;
        let mut i = body_open;
        while i <= body_close {
            if let Some(&(a, b)) = inner.iter().find(|&&(a, _)| a == i) {
                let _ = a;
                i = b + 1;
                continue;
            }
            let t = &toks[i];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            } else if t.is_punct(';') {
                guards.retain(|g| !(g.temp && g.depth >= depth));
            } else if t.kind == TokKind::Ident {
                let name = t.text(ctx.src);
                // drop(g) releases a named guard early.
                if name == "drop" && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                    if let Some(arg) = ctx.ident_at(i + 2) {
                        guards.retain(|g| g.name.as_deref() != Some(arg));
                    }
                } else if name == "lock"
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                    && !is_stdio_lock(ctx, i)
                {
                    if let Some(g) = guards.first() {
                        let held = g
                            .name
                            .clone()
                            .unwrap_or_else(|| "a statement-temporary guard".into());
                        push(
                            out,
                            file,
                            RULES[1],
                            t.line,
                            format!(
                                ".lock() taken while {held} (line {}) is still live; \
                                 take locks sequentially, never nested (drop the first \
                                 guard or narrow its scope)",
                                g.line
                            ),
                        );
                    }
                    let (bind, after) = lock_binding(ctx, body_open, i);
                    match bind {
                        Some(name) if after == LockTail::Statement => {
                            guards.push(Guard {
                                name: Some(name),
                                depth,
                                temp: false,
                                line: t.line,
                            });
                        }
                        Some(name) if after == LockTail::Block => {
                            // `if let Ok(g) = x.lock() {` — guard lives in
                            // the block about to open.
                            guards.push(Guard {
                                name: Some(name),
                                depth: depth + 1,
                                temp: false,
                                line: t.line,
                            });
                        }
                        _ => {
                            guards.push(Guard {
                                name: None,
                                depth,
                                temp: true,
                                line: t.line,
                            });
                        }
                    }
                }
            }
            i += 1;
        }
    }
}

/// `stdout().lock()` / `stderr().lock()` / `stdin().lock()` are reentrant
/// io handles, not Mutexes — not part of the cache's lock discipline.
fn is_stdio_lock(ctx: &Ctx<'_>, lock_idx: usize) -> bool {
    // Shape: ident `(` `)` `.` lock — look 4 tokens back for the handle.
    lock_idx >= 4
        && ctx.toks[lock_idx - 2].is_punct(')')
        && ctx.toks[lock_idx - 3].is_punct('(')
        && matches!(
            ctx.ident_at(lock_idx - 4),
            Some("stdout") | Some("stderr") | Some("stdin")
        )
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum LockTail {
    /// Chain ends the statement (`;`) — a `let` binding holds the guard.
    Statement,
    /// Chain is followed by `{` (`if let` / `while let` binding).
    Block,
    /// Anything else — the guard is a statement temporary.
    Other,
}

/// For a `.lock()` at token `i`: finds the `let` binding name (if the
/// statement is a `let`) and classifies what follows the
/// `.lock().unwrap()/.expect(…)/.unwrap_or_else(…)` chain.
fn lock_binding(ctx: &Ctx<'_>, body_open: usize, i: usize) -> (Option<String>, LockTail) {
    let toks = ctx.toks;
    // Statement start: scan back to `;`, `{`, `}` or `=>`.
    let mut s = i;
    while s > body_open {
        let t = &toks[s - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        if t.is_punct('>') && s >= 2 && toks[s - 2].is_punct('=') {
            break; // match arm `=>`
        }
        s -= 1;
    }
    // Binding name: last ident (except `mut`) between `let` and `=`.
    let mut name = None;
    let has_let = (s..i).take(4).any(|k| ctx.ident_at(k) == Some("let"));
    if has_let {
        let let_at = (s..i)
            .find(|&k| ctx.ident_at(k) == Some("let"))
            .unwrap_or(s);
        let mut eq_at = None;
        for (k, t) in toks.iter().enumerate().take(i).skip(let_at + 1) {
            if t.is_punct('=') {
                eq_at = Some(k);
                break;
            }
            if let Some(id) = ctx.ident_at(k) {
                if id != "mut" {
                    name = Some(id.to_string());
                }
            }
        }
        // `let x = *a.lock()…;` binds the dereferenced value, not the
        // guard — the guard is a statement temporary.
        if let Some(eq) = eq_at {
            if (eq + 1..i).any(|k| toks[k].is_punct('*')) {
                name = None;
            }
        }
    }
    // Walk the guard-consuming chain after `.lock(` …
    let mut j = match_bracket(toks, i + 1, '(', ')') + 1;
    loop {
        if toks.get(j).is_some_and(|t| t.is_punct('.'))
            && matches!(
                ctx.ident_at(j + 1),
                Some("unwrap") | Some("expect") | Some("unwrap_or_else")
            )
            && toks.get(j + 2).is_some_and(|t| t.is_punct('('))
        {
            j = match_bracket(toks, j + 2, '(', ')') + 1;
        } else {
            break;
        }
    }
    let tail = match toks.get(j) {
        Some(t) if t.is_punct(';') => LockTail::Statement,
        Some(t) if t.is_punct('{') => LockTail::Block,
        _ => LockTail::Other,
    };
    (name, tail)
}

/// Primitive numeric type names (casts don't make a size wire-derived).
const PRIMS: [&str; 13] = [
    "usize", "u8", "u16", "u32", "u64", "u128", "isize", "i8", "i16", "i32", "i64", "i128", "as",
];

/// Rule 3 — `uncapped-wire-alloc` (PR 8): in decoder modules, an
/// allocation sized from a wire-derived value (`with_capacity`,
/// `.reserve`, `vec![x; n]`) must be dominated by a visible cap check —
/// a `cap_count(n, …)` call or a comparison of the size against a
/// `MAX_*` constant / remaining-bytes bound — *before* the allocation in
/// the same function. This freezes the PR 8 `terms` alloc-DoS fix.
fn uncapped_wire_alloc(file: &str, ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.is_test(i) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text(ctx.src);
        // Locate the size-expression token range for each alloc form.
        let size_span: Option<(usize, usize)> =
            if (name == "with_capacity" || name == "reserve" || name == "reserve_exact")
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                let close = match_bracket(toks, i + 1, '(', ')');
                Some((i + 2, close))
            } else if name == "vec"
                && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
                && toks.get(i + 2).is_some_and(|n| n.is_punct('['))
            {
                // Only the `vec![elem; count]` form sizes an allocation.
                let close = match_bracket(toks, i + 2, '[', ']');
                let semi = (i + 3..close).find(|&k| toks[k].is_punct(';'));
                semi.map(|s| (s + 1, close))
            } else {
                None
            };
        let Some((a, b)) = size_span else { continue };
        if a >= b {
            continue;
        }

        // Size identifiers: idents in the expression that are not method
        // names (`.len()`), path segments, casts, primitives or
        // SCREAMING_CASE constants.
        let expr = &toks[a..b];
        let mut size_idents: Vec<&str> = Vec::new();
        let mut has_len_bound = false;
        for (k, x) in expr.iter().enumerate() {
            if x.kind != TokKind::Ident {
                continue;
            }
            let s = x.text(ctx.src);
            let after_dot = k > 0 && expr[k - 1].is_punct('.');
            if after_dot {
                if s == "len" || s == "min" {
                    // `.len()` of an in-memory value / `.min(cap)` are
                    // bounded by construction.
                    has_len_bound = true;
                }
                continue;
            }
            let in_path = (k > 0 && expr[k - 1].is_punct(':'))
                || (k + 1 < expr.len() && expr[k + 1].is_punct(':'));
            if in_path || PRIMS.contains(&s) || s == "self" {
                continue;
            }
            if s.chars()
                .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
            {
                continue; // MAX_* style constant
            }
            size_idents.push(s);
        }
        if size_idents.is_empty() || has_len_bound {
            continue;
        }

        // Evidence scan: from the start of the enclosing function to the
        // allocation site.
        let Some((body_open, _)) = ctx.enclosing_fn(i) else {
            continue;
        };
        let before = &toks[body_open..i];
        let capped = size_idents.iter().any(|id| {
            before.iter().enumerate().any(|(k, x)| {
                // cap_count(id, …)
                if x.is_ident(ctx.src, "cap_count") {
                    let open = body_open + k + 1;
                    if toks.get(open).is_some_and(|t| t.is_punct('(')) {
                        let close = match_bracket(toks, open, '(', ')');
                        return toks[open..close].iter().any(|y| y.is_ident(ctx.src, id));
                    }
                }
                // `id` within 4 tokens of a comparison, with a MAX_* /
                // remaining / len bound or integer literal nearby.
                if x.is_ident(ctx.src, id) {
                    let abs = body_open + k;
                    let w = &toks[abs.saturating_sub(4)..(abs + 5).min(toks.len())];
                    let cmp = w.iter().any(|y| y.is_punct('<') || y.is_punct('>'));
                    let wide = &toks[abs.saturating_sub(12)..(abs + 13).min(toks.len())];
                    let bound = wide.iter().any(|y| {
                        (y.kind == TokKind::Ident
                            && (y.text(ctx.src).starts_with("MAX_")
                                || y.text(ctx.src) == "remaining"
                                || y.text(ctx.src) == "len"))
                            || y.kind == TokKind::Lit
                    });
                    return cmp && bound;
                }
                false
            })
        });
        if !capped {
            push(
                out,
                file,
                RULES[2],
                t.line,
                format!(
                    "allocation sized from `{}` with no visible cap check before it in \
                     this function (cap_count(…) or a `MAX_*`/remaining-bytes \
                     comparison); wire-derived sizes must be capped at admission",
                    size_idents.join("`, `"),
                ),
            );
        }
    }
}

/// Rule 4 — `nondeterministic-iter` (PRs 1–4): bit-identity kernel and
/// canonical-hash modules must not touch `HashMap`/`HashSet` at all —
/// their iteration order varies run to run, which silently breaks the
/// bit-identity proptest story the perf work is built on. Use `BTreeMap`
/// or index-keyed `Vec`s. Test code exempt.
fn nondeterministic_iter(file: &str, ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.is_test(i) {
            continue;
        }
        if t.kind == TokKind::Ident {
            let s = t.text(ctx.src);
            if s == "HashMap" || s == "HashSet" || s == "hash_map" || s == "hash_set" {
                push(
                    out,
                    file,
                    RULES[3],
                    t.line,
                    format!(
                        "{s} in a bit-identity module: hash iteration order is \
                         nondeterministic and breaks the bit-identity proptests; use \
                         BTreeMap/BTreeSet or an index-keyed Vec"
                    ),
                );
            }
        }
    }
}

/// Rule 5 — `crate-hygiene`: every crate root carries
/// `#![forbid(unsafe_code)]`; no `todo!`, `dbg!` or `std::process::exit`
/// outside the `cli` crate (binaries return `ExitCode` instead, so
/// destructors and flushes run).
fn crate_hygiene(file: &str, class: &FileClass, ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    if class.crate_root {
        let mut has_forbid = false;
        for i in 0..toks.len() {
            if toks[i].is_ident(ctx.src, "forbid")
                && ctx.is_attr(i)
                && toks[i..toks.len().min(i + 4)]
                    .iter()
                    .any(|t| t.is_ident(ctx.src, "unsafe_code"))
            {
                has_forbid = true;
                break;
            }
        }
        if !has_forbid {
            push(
                out,
                file,
                RULES[4],
                1,
                "crate root is missing #![forbid(unsafe_code)]".to_string(),
            );
        }
    }
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let s = t.text(ctx.src);
        let next_bang = toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
        if next_bang && (s == "todo" || s == "dbg") {
            push(
                out,
                file,
                RULES[4],
                t.line,
                format!("{s}! must not ship; finish it or delete it"),
            );
        }
        if s == "exit"
            && !class.exempt_exit
            && i >= 2
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && (3..=4).any(|back| i >= back && ctx.ident_at(i - back) == Some("process"))
        {
            push(
                out,
                file,
                RULES[4],
                t.line,
                "std::process::exit skips destructors (unflushed disk tier, half-written \
                 snapshots); return ExitCode / propagate a typed error instead \
                 (only crates/cli may exit)"
                    .to_string(),
            );
        }
    }
}
