//! Extension experiments beyond the paper's evaluation:
//!
//! 1. **Local-search refinement** — how much battery the steepest-descent
//!    post-pass recovers on top of the paper's algorithm and each baseline.
//! 2. **Ordering bounds** — where every algorithm's schedule sits inside
//!    the precedence-free σ bracket of Rakhmatov's ordering theorem.
//! 3. **Monte-Carlo robustness** — mission success probability under task
//!    duration jitter, ours vs the energy-optimal DP baseline, at equal
//!    battery capacity.

#![forbid(unsafe_code)]

use batsched_baselines::{
    ordering_bounds, ChowdhuryScaling, KhanVemuri, RakhmatovDp, RandomSearch, Scheduler,
};
use batsched_battery::model::peak_apparent_charge;
use batsched_battery::rv::RvModel;
use batsched_battery::units::{MilliAmpMinutes, Minutes};
use batsched_bench::Table;
use batsched_core::{refine_schedule, SchedulerConfig};
use batsched_sim::{DurationJitter, MissionSampler, Simulator};
use batsched_taskgraph::paper::g3;

fn main() {
    let g = g3();
    let d = Minutes::new(230.0);
    let cfg = SchedulerConfig::paper();
    let model = RvModel::date05();

    println!("== Extension 1: local-search refinement on G3 (d = 230) ==\n");
    let mut t = Table::new(["algorithm", "σ before", "σ after", "gain", "moves"]);
    let algos: Vec<Box<dyn Scheduler>> = vec![
        Box::new(KhanVemuri::paper()),
        Box::new(RakhmatovDp::default()),
        Box::new(ChowdhuryScaling),
        Box::new(RandomSearch {
            samples: 20,
            ..Default::default()
        }),
    ];
    for algo in &algos {
        let s = algo.schedule(&g, d).unwrap();
        let before = s.battery_cost(&g, &model).value();
        let refined = refine_schedule(&g, &s, d, &cfg, 256).unwrap();
        refined.schedule.validate(&g, Some(d)).unwrap();
        t.row([
            algo.name().to_string(),
            format!("{before:.0}"),
            format!("{:.0}", refined.cost.value()),
            format!("{:+.1}%", (refined.cost.value() - before) / before * 100.0),
            format!(
                "{} swaps, {} points",
                refined.stats.swaps, refined.stats.point_moves
            ),
        ]);
    }
    print!("{}", t.render());
    println!("\n(the paper's algorithm and the backward-scaling heuristic are already local");
    println!("optima for these moves; schedules with ordering headroom get polished)");

    println!("\n== Extension 2: position inside the ordering-theorem bracket ==\n");
    let mut t = Table::new(["algorithm", "σ", "lower", "upper", "position"]);
    for algo in &algos {
        let s = algo.schedule(&g, d).unwrap();
        let b = ordering_bounds(&g, &s, &model);
        let sigma = s.battery_cost(&g, &model);
        t.row([
            algo.name().to_string(),
            format!("{:.0}", sigma.value()),
            format!("{:.0}", b.lower.value()),
            format!("{:.0}", b.upper.value()),
            format!("{:.3}", b.position(sigma)),
        ]);
    }
    print!("{}", t.render());
    println!("\n(0 = the precedence-free optimum ordering, 1 = the worst; the paper's");
    println!("algorithm should sit near 0, the energy-only DP baseline far higher)");

    println!("\n== Extension 3: Monte-Carlo robustness at ±10% duration jitter ==\n");
    let ours = KhanVemuri::paper().schedule(&g, d).unwrap();
    let dp = RakhmatovDp::default().schedule(&g, d).unwrap();
    // Equal battery for both plans, no deadline in the sampler: this
    // isolates BATTERY robustness (duration jitter moves completion times
    // identically for both plans, which would drown the signal in equal
    // deadline misses).
    let (_, peak) = peak_apparent_charge(&model, &ours.to_profile(&g), 64);
    let capacity = MilliAmpMinutes::new(peak.value() * 1.05);
    println!(
        "shared battery: {:.0} mA·min (ours' peak requirement + 5%)\n",
        capacity.value()
    );
    let mut t = Table::new(["plan", "survived", "depleted", "P(depletion)"]);
    let mut rates = Vec::new();
    for (name, plan) in [("khan-vemuri", &ours), ("rakhmatov-dp", &dp)] {
        let sampler = MissionSampler {
            simulator: Simulator::paper(capacity, None),
            jitter: DurationJitter { spread: 0.10 },
            samples: 2_000,
            seed: 0x2005,
        };
        let r = sampler.run(&g, plan, &model);
        rates.push(r.depletions as f64 / r.samples as f64);
        t.row([
            name.to_string(),
            format!("{}", r.successes),
            format!("{}", r.depletions),
            format!("{:.4}", r.depletions as f64 / r.samples as f64),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\non a battery sized for the battery-aware plan, the energy-optimal plan is {:.1}x",
        rates[1] / rates[0].max(1.0 / 2_000.0)
    );
    println!("more likely to die mid-mission under the same duration jitter.");
}
