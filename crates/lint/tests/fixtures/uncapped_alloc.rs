//! uncapped-wire-alloc fixture: linted under a decoder classification.

const MAX_TERMS: usize = 4096;

fn bad_uncapped(n_terms: usize) -> Vec<u64> {
    Vec::with_capacity(n_terms)
}

fn bad_vec_macro(count: usize) -> Vec<u8> {
    vec![0u8; count]
}

fn ok_capped(n_terms: usize) -> Result<Vec<u64>, String> {
    if n_terms > MAX_TERMS {
        return Err("too many terms".to_string());
    }
    Ok(Vec::with_capacity(n_terms))
}

fn ok_len_bound(xs: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(xs.len());
    out.extend_from_slice(xs);
    out
}

fn ok_min_clamped(n_terms: usize) -> Vec<u64> {
    Vec::with_capacity(n_terms.min(64))
}

fn ok_constant_size() -> Vec<u8> {
    Vec::with_capacity(1024)
}
