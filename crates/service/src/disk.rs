//! The disk cache tier: an append-only JSONL file of `{key, body}` records
//! so a restarted daemon serves previously computed answers as warm hits.
//!
//! Layout: one record per line, `{"key":"<16-hex>","body":"<response>"}`.
//! On open the file is scanned once to build a key → line-span index (last
//! record per key wins, a truncated final line — the daemon was killed
//! mid-append — is skipped); bodies stay on disk and are read on demand,
//! so the tier's memory cost is the index, not the payloads. Writes go
//! through an append handle and are flushed per record, so a crash loses
//! at most the record being written. [`DiskTier::compact`] rewrites the
//! file with exactly one record per live key (temp file + atomic rename);
//! the service runs it on graceful shutdown so restarts load a dense file.
//!
//! Responses are pure functions of the canonical key, so a key that is
//! already present is never re-appended — the file grows with *distinct*
//! requests, not with traffic.

use crate::faults::{FaultPlane, FaultSite};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// When appended records are fsynced to stable storage. Flushing (which
/// every `put` does) hands the bytes to the OS; only an fsync survives a
/// power loss. `Always` pays one `fdatasync` per new record, `EveryN`
/// amortises it, `Never` trusts the OS page cache (the pre-existing
/// behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never fsync on `put`; an OS crash can lose every record since boot.
    Never,
    /// Fsync after every `n` appended records (must be ≥ 1).
    EveryN(u32),
    /// Fsync after each appended record.
    Always,
}

impl Default for FsyncPolicy {
    /// Fsync every 8 records: bounded loss without a per-record fsync.
    fn default() -> Self {
        FsyncPolicy::EveryN(8)
    }
}

/// One persisted cache record (a single JSONL line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct DiskRecord {
    /// Canonical content hash, 16 hex digits (the response `key` format).
    key: String,
    /// The complete serialised response body, replayed bit-identically.
    body: String,
}

/// Byte span of one record line within the cache file.
#[derive(Debug, Clone, Copy)]
struct Span {
    offset: u64,
    len: u32,
}

/// The persistent result-cache tier behind the in-memory shards.
#[derive(Debug)]
pub struct DiskTier {
    path: PathBuf,
    /// Append handle; all writes are whole flushed lines.
    writer: BufWriter<File>,
    /// Independent read handle for on-demand body loads.
    reader: File,
    /// key → span of the latest record for it.
    index: HashMap<u64, Span>,
    /// Where the next append lands (== current file length).
    end: u64,
    /// When appended records are fsynced.
    fsync: FsyncPolicy,
    /// Appends since the last fsync (drives [`FsyncPolicy::EveryN`]).
    unsynced: u32,
    /// Injection probes for chaos tests; disarmed in production.
    faults: FaultPlane,
}

impl DiskTier {
    /// Opens (creating if absent) the cache file at `path` and indexes its
    /// records, with the default fsync policy and a disarmed fault plane.
    /// Malformed or truncated lines are skipped, not fatal — a crash
    /// mid-append must not brick the tier.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures (unreachable path, permissions).
    pub fn open(path: impl Into<PathBuf>) -> io::Result<DiskTier> {
        Self::open_with(path, FsyncPolicy::default(), FaultPlane::disarmed())
    }

    /// Opens the tier with an explicit fsync policy and fault plane.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures (unreachable path, permissions).
    pub fn open_with(
        path: impl Into<PathBuf>,
        fsync: FsyncPolicy,
        faults: FaultPlane,
    ) -> io::Result<DiskTier> {
        let path = path.into();
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        let mut reader = File::open(&path)?;
        let (index, mut end) = index_file(&path)?;
        // Repair a torn tail (crash mid-append): terminate it with a
        // newline so the next append starts a fresh line instead of
        // concatenating onto the dead bytes. The repair is fsynced
        // unconditionally — it happens once per boot and losing it would
        // re-tear the tail on the next crash.
        if end > 0 {
            let mut last = [0u8; 1];
            reader.seek(SeekFrom::Start(end - 1))?;
            reader.read_exact(&mut last)?;
            if last[0] != b'\n' {
                faults.disk_gate(FaultSite::DiskWrite, "torn-tail-repair")?;
                file.write_all(b"\n")?;
                file.flush()?;
                file.sync_data()?;
                end += 1;
            }
        }
        Ok(DiskTier {
            path,
            writer: BufWriter::new(file),
            reader,
            index,
            end,
            fsync,
            unsynced: 0,
            faults,
        })
    }

    /// The file this tier persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of distinct keys on disk.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when no record is stored.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Reads the body stored for `key`, if any. A record that no longer
    /// parses (torn by an unclean shutdown mid-compaction) is dropped from
    /// the index and reported as a miss — only real I/O failures are
    /// errors, so the caller's breaker can tell "the disk is sick" apart
    /// from "we never stored that".
    ///
    /// # Errors
    ///
    /// Propagates read failures (and injected [`FaultSite::DiskRead`]
    /// faults).
    pub fn get(&mut self, key: u64) -> io::Result<Option<String>> {
        let Some(span) = self.index.get(&key).copied() else {
            return Ok(None);
        };
        self.faults.disk_gate(FaultSite::DiskRead, &key_hex(key))?;
        match self.read_span(span)? {
            Some(rec) if rec.key == key_hex(key) => Ok(Some(rec.body)),
            _ => {
                self.index.remove(&key);
                Ok(None)
            }
        }
    }

    /// Persists `body` under `key`. Already-present keys are skipped:
    /// responses are pure functions of the canonical key, so the first
    /// record is as good as any later one.
    ///
    /// # Errors
    ///
    /// Propagates write failures (and injected [`FaultSite::DiskAppend`]
    /// faults); the index is only updated after the record is flushed.
    pub fn put(&mut self, key: u64, body: &str) -> io::Result<()> {
        if self.index.contains_key(&key) {
            return Ok(());
        }
        self.faults
            .disk_gate(FaultSite::DiskAppend, &key_hex(key))?;
        let line = render_record(key, body);
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        match self.fsync {
            FsyncPolicy::Never => {}
            FsyncPolicy::Always => self.writer.get_ref().sync_data()?,
            FsyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n.max(1) {
                    self.writer.get_ref().sync_data()?;
                    self.unsynced = 0;
                }
            }
        }
        self.index.insert(
            key,
            Span {
                offset: self.end,
                len: line.len() as u32,
            },
        );
        self.end += line.len() as u64;
        Ok(())
    }

    /// Rewrites the file with exactly one record per live key, dropping
    /// duplicates and torn lines. Writes a sibling temp file first and
    /// renames it over the original, so a crash mid-compaction leaves
    /// either the old file or the new one — never a half file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; on error the original file is untouched.
    pub fn compact(&mut self) -> io::Result<()> {
        self.faults.disk_gate(FaultSite::DiskWrite, "compact")?;
        self.writer.flush()?;
        let tmp_path = self.path.with_extension("compact-tmp");
        let mut new_index = HashMap::with_capacity(self.index.len());
        let mut offset = 0u64;
        {
            let mut tmp = BufWriter::new(File::create(&tmp_path)?);
            let mut keys: Vec<u64> = self.index.keys().copied().collect();
            keys.sort_unstable(); // deterministic file layout
            for key in keys {
                let span = self.index[&key];
                let Some(rec) = self.read_span(span)? else {
                    continue; // torn record: drop it
                };
                if rec.key != key_hex(key) {
                    continue;
                }
                let line = render_record(key, &rec.body);
                tmp.write_all(line.as_bytes())?;
                new_index.insert(
                    key,
                    Span {
                        offset,
                        len: line.len() as u32,
                    },
                );
                offset += line.len() as u64;
            }
            tmp.flush()?;
            // Make the data durable before the rename becomes visible:
            // without this, a power loss can persist the directory entry
            // while the new file's blocks are still in the page cache.
            tmp.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        // Reopen both handles: the rename replaced the inode they pointed at.
        self.writer = BufWriter::new(OpenOptions::new().append(true).open(&self.path)?);
        self.reader = File::open(&self.path)?;
        self.index = new_index;
        self.end = offset;
        self.unsynced = 0;
        Ok(())
    }

    /// Reads one record line. I/O failures are errors; a line that no
    /// longer parses is `Ok(None)` (stale index entry, not a sick disk).
    fn read_span(&mut self, span: Span) -> io::Result<Option<DiskRecord>> {
        self.reader.seek(SeekFrom::Start(span.offset))?;
        let mut raw = vec![0u8; span.len as usize];
        if let Err(e) = self.reader.read_exact(&mut raw) {
            // A span past EOF means the file shrank under us (external
            // truncation / torn compaction): a stale entry, not a sick disk.
            return if e.kind() == io::ErrorKind::UnexpectedEof {
                Ok(None)
            } else {
                Err(e)
            };
        }
        let Ok(line) = std::str::from_utf8(&raw) else {
            return Ok(None);
        };
        Ok(serde_json::from_str(line.trim_end()).ok())
    }
}

fn key_hex(key: u64) -> String {
    format!("{key:016x}")
}

fn render_record(key: u64, body: &str) -> String {
    let rec = DiskRecord {
        key: key_hex(key),
        body: body.to_string(),
    };
    let mut line = serde_json::to_string(&rec).expect("records serialise");
    line.push('\n');
    line
}

/// Scans the whole file once, returning the last-wins span index and the
/// offset where appends continue. A final line without `\n` (torn append)
/// is ignored, and appends resume at the file's true end — the torn bytes
/// are dead but harmless, and the next compaction drops them.
fn index_file(path: &Path) -> io::Result<(HashMap<u64, Span>, u64)> {
    let file = File::open(path)?;
    let end = file.metadata()?.len();
    let mut reader = BufReader::new(file);
    let mut index = HashMap::new();
    let mut offset = 0u64;
    let mut raw = Vec::new();
    loop {
        raw.clear();
        let n = reader.read_until(b'\n', &mut raw)?;
        if n == 0 {
            break;
        }
        if raw.last() == Some(&b'\n') {
            if let Some(key) = parse_line_key(&raw) {
                index.insert(
                    key,
                    Span {
                        offset,
                        len: n as u32,
                    },
                );
            }
        }
        offset += n as u64;
    }
    Ok((index, end))
}

/// Parses just the key out of a record line (the body is left on disk).
fn parse_line_key(raw: &[u8]) -> Option<u64> {
    let line = std::str::from_utf8(raw).ok()?;
    let rec: DiskRecord = serde_json::from_str(line.trim_end()).ok()?;
    u64::from_str_radix(&rec.key, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("batsched_disk_tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let p = dir.join(format!("{name}_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn put_get_and_reload_round_trip() {
        let path = tmp_path("round_trip");
        let mut t = DiskTier::open(&path).unwrap();
        assert!(t.is_empty());
        t.put(1, "{\"answer\":42}").unwrap();
        t.put(2, "two\nlines \"quoted\" é").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(1).unwrap().as_deref(), Some("{\"answer\":42}"));
        assert_eq!(
            t.get(2).unwrap().as_deref(),
            Some("two\nlines \"quoted\" é")
        );
        assert_eq!(t.get(3).unwrap(), None);
        drop(t);

        let mut t = DiskTier::open(&path).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.get(2).unwrap().as_deref(),
            Some("two\nlines \"quoted\" é")
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn existing_keys_are_not_reappended() {
        let path = tmp_path("no_reappend");
        let mut t = DiskTier::open(&path).unwrap();
        t.put(7, "first").unwrap();
        let len_before = std::fs::metadata(&path).unwrap().len();
        t.put(7, "second").unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), len_before);
        assert_eq!(t.get(7).unwrap().as_deref(), Some("first"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_final_line_is_skipped_and_overwritten_territory_survives() {
        let path = tmp_path("torn");
        let mut t = DiskTier::open(&path).unwrap();
        t.put(1, "one").unwrap();
        t.put(2, "two").unwrap();
        drop(t);
        // Simulate a crash mid-append: half a record, no newline.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"key\":\"00000000000000").unwrap();
        }
        let mut t = DiskTier::open(&path).unwrap();
        assert_eq!(t.len(), 2, "torn line ignored");
        assert_eq!(t.get(1).unwrap().as_deref(), Some("one"));
        // New appends land after the torn bytes and still read back.
        t.put(3, "three").unwrap();
        assert_eq!(t.get(3).unwrap().as_deref(), Some("three"));
        drop(t);
        let mut t = DiskTier::open(&path).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(3).unwrap().as_deref(), Some("three"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compact_dedups_and_drops_dead_bytes() {
        let path = tmp_path("compact");
        let mut t = DiskTier::open(&path).unwrap();
        for k in 0..8u64 {
            t.put(k, &format!("body-{k}")).unwrap();
        }
        // Dead bytes from a torn append.
        t.writer.get_mut().write_all(b"garbage no newline").unwrap();
        t.writer.get_mut().flush().unwrap();
        t.end += "garbage no newline".len() as u64;
        t.compact().unwrap();
        assert_eq!(t.len(), 8);
        for k in 0..8u64 {
            assert_eq!(
                t.get(k).unwrap().as_deref(),
                Some(format!("body-{k}").as_str())
            );
        }
        // Appending after compaction still works and reloads.
        t.put(99, "after").unwrap();
        drop(t);
        let mut t = DiskTier::open(&path).unwrap();
        assert_eq!(t.len(), 9);
        assert_eq!(t.get(99).unwrap().as_deref(), Some("after"));
        assert_eq!(t.get(0).unwrap().as_deref(), Some("body-0"));
        std::fs::remove_file(&path).unwrap();
    }
}
