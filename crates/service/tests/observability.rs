//! Observability contract tests: trace-id propagation over HTTP (client
//! ids echoed — including on typed errors — and generated ids unique
//! across keep-alive pipelining), the one-span-per-request contract with
//! exact stage reconciliation, and property tests pinning the log-bucket
//! histogram to a sorted-vec oracle.

use batsched_service::prelude::*;
use batsched_service::{HistogramSnapshot, LogTarget, Service, BUCKET_BOUNDS_US};
use batsched_taskgraph::paper::g2;
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn g2_body() -> String {
    serde_json::to_string(&ScheduleRequest::new(g2(), 75.0)).expect("serialises")
}

fn tmp_file(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("batsched_observability_tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let p = dir.join(format!("{name}_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// Sends one framed request over `stream` with optional extra header
/// lines; returns `(status, head, body)`. Keep-alive unless `close`.
fn roundtrip(
    stream: &mut TcpStream,
    path: &str,
    extra_headers: &[&str],
    body: &str,
    close: bool,
) -> (u16, String, String) {
    let connection = if close { "close" } else { "keep-alive" };
    let extra: String = extra_headers.iter().map(|h| format!("{h}\r\n")).collect();
    let req = format!(
        "POST {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: {connection}\r\n{extra}\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut head = String::new();
    loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).expect("head line") > 0, "eof");
        if line.trim_end().is_empty() {
            break;
        }
        head.push_str(&line);
    }
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status code");
    let len: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().expect("numeric length"))
        })
        .expect("Content-Length");
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload).expect("body");
    (status, head, String::from_utf8(payload).expect("utf8"))
}

/// Pulls the echoed `X-Request-Id` out of a response head.
fn request_id(head: &str) -> String {
    head.lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("x-request-id")
                .then(|| value.trim().to_string())
        })
        .unwrap_or_else(|| panic!("no X-Request-Id in head: {head}"))
}

// ------------------------------------------------- trace-id propagation

#[test]
fn client_request_ids_are_echoed_even_on_typed_errors() {
    let svc = Arc::new(Service::start(ServiceConfig::default()));
    let server = HttpServer::bind(Arc::clone(&svc), "127.0.0.1:0").expect("bind");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

    // A good request: the client's id comes back verbatim.
    let (status, head, _) = roundtrip(
        &mut stream,
        "/v1/schedule",
        &["X-Request-Id: client-abc-123"],
        &g2_body(),
        false,
    );
    assert_eq!(status, 200);
    assert_eq!(request_id(&head), "client-abc-123");

    // A malformed request: the typed 400 still carries the client's id.
    let (status, head, body) = roundtrip(
        &mut stream,
        "/v1/schedule",
        &["X-Request-Id: client-bad-7"],
        "{ nope",
        false,
    );
    assert_eq!(status, 400);
    let err: ErrorResponse = serde_json::from_str(&body).expect("typed error");
    assert_eq!(err.error, "bad_json");
    assert_eq!(request_id(&head), "client-bad-7");

    // An unusable id (embedded whitespace) is ignored, not rejected: the
    // request succeeds under a server-generated id instead.
    let (status, head, _) = roundtrip(
        &mut stream,
        "/v1/schedule",
        &["X-Request-Id: has a space"],
        &g2_body(),
        true,
    );
    assert_eq!(status, 200);
    let generated = request_id(&head);
    assert_ne!(generated, "has a space");
    assert!(
        generated.contains('-'),
        "generated ids are hash-seq: {generated}"
    );

    drop(stream);
    server.stop();
    server.wait();
    svc.shutdown();
}

#[test]
fn generated_ids_are_unique_across_keepalive_pipelining() {
    let svc = Arc::new(Service::start(ServiceConfig::default()));
    let server = HttpServer::bind(Arc::clone(&svc), "127.0.0.1:0").expect("bind");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

    // The same body replayed down one connection: every response gets its
    // own id (the sequence part), while the hash prefix — derived from
    // the body — stays identical, so replays correlate.
    let body = g2_body();
    let mut ids = Vec::new();
    for i in 0..8 {
        let (status, head, _) = roundtrip(&mut stream, "/v1/schedule", &[], &body, i == 7);
        assert_eq!(status, 200);
        ids.push(request_id(&head));
    }
    let unique: std::collections::HashSet<&String> = ids.iter().collect();
    assert_eq!(unique.len(), ids.len(), "duplicate generated ids: {ids:?}");
    let prefixes: std::collections::HashSet<&str> = ids
        .iter()
        .map(|id| id.split_once('-').expect("hash-seq form").0)
        .collect();
    assert_eq!(
        prefixes.len(),
        1,
        "same body must share a hash prefix: {ids:?}"
    );

    drop(stream);
    server.stop();
    server.wait();
    svc.shutdown();
}

// ------------------------------------------------- span-per-request contract

#[test]
fn one_span_per_request_with_exact_stage_reconciliation() {
    let span_path = tmp_file("span_contract");
    let svc = Arc::new(Service::start(ServiceConfig {
        log_json: Some(LogTarget::File(span_path.clone())),
        ..ServiceConfig::default()
    }));
    let server = HttpServer::bind(Arc::clone(&svc), "127.0.0.1:0").expect("bind");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

    let (status, head, _) = roundtrip(
        &mut stream,
        "/v1/schedule",
        &["X-Request-Id: span-contract-1"],
        &g2_body(),
        true,
    );
    assert_eq!(status, 200);
    assert_eq!(request_id(&head), "span-contract-1");

    drop(stream);
    server.stop();
    server.wait();
    svc.shutdown();

    let raw = std::fs::read_to_string(&span_path).expect("span log written");
    let spans: Vec<&str> = raw.lines().filter(|l| l.contains("\"trace_id\"")).collect();
    assert_eq!(spans.len(), 1, "exactly one span per request: {raw}");
    let span = spans[0];
    assert!(span.contains("\"trace_id\":\"span-contract-1\""), "{span}");
    assert!(span.contains("\"outcome\":\"solved\""), "{span}");
    assert!(span.contains("\"level\":\"info\""), "{span}");

    // The stage durations (plus the explicit `other_us` remainder) sum
    // exactly to the end-to-end latency — stronger than the 5% budget.
    let field = |name: &str| -> u64 {
        let tag = format!("\"{name}\":");
        let at = span.find(&tag).unwrap_or_else(|| panic!("{name}: {span}"));
        span[at + tag.len()..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .expect("integer field")
    };
    let staged: u64 = [
        "read_us",
        "queue_us",
        "parse_us",
        "hash_us",
        "cache_us",
        "disk_us",
        "solve_us",
        "serialize_us",
        "write_us",
        "other_us",
    ]
    .iter()
    .map(|f| field(f))
    .sum();
    assert_eq!(staged, field("total_us"), "{span}");
    assert!(
        field("solve_us") > 0,
        "a cold solve takes real time: {span}"
    );

    std::fs::remove_file(&span_path).unwrap();
}

#[test]
fn jsonl_frontend_spans_one_line_per_request() {
    let span_path = tmp_file("jsonl_spans");
    let svc = Service::start(ServiceConfig {
        log_json: Some(LogTarget::File(span_path.clone())),
        ..ServiceConfig::default()
    });
    // Two identical lines: two spans, distinct ids, shared hash prefix.
    let req = g2_body();
    let input = format!("{req}\n{req}\n");
    let mut out = Vec::new();
    let summary = run_jsonl(&svc, input.as_bytes(), &mut out).expect("jsonl session");
    assert_eq!(summary.requests, 2);
    svc.shutdown();

    let raw = std::fs::read_to_string(&span_path).expect("span log written");
    let ids: Vec<String> = raw
        .lines()
        .filter(|l| l.contains("\"trace_id\""))
        .map(|l| {
            let at = l.find("\"trace_id\":\"").expect("id field") + "\"trace_id\":\"".len();
            l[at..]
                .split('"')
                .next()
                .expect("closed string")
                .to_string()
        })
        .collect();
    assert_eq!(ids.len(), 2, "{raw}");
    assert_ne!(ids[0], ids[1], "replays need distinct ids");
    assert_eq!(
        ids[0].split_once('-').map(|(h, _)| h),
        ids[1].split_once('-').map(|(h, _)| h),
        "identical bodies share a hash prefix"
    );
    std::fs::remove_file(&span_path).unwrap();
}

// ---------------------------------------------- histogram vs oracle props

/// Bucket bounds `[lower, upper]` containing the value `v` (upper is
/// +Inf for the overflow bucket).
fn bucket_bounds(v: u64) -> (f64, f64) {
    let i = BUCKET_BOUNDS_US.partition_point(|&b| b < v);
    let lower = if i == 0 {
        0.0
    } else {
        BUCKET_BOUNDS_US[i - 1] as f64
    };
    let upper = if i == BUCKET_BOUNDS_US.len() {
        f64::INFINITY
    } else {
        BUCKET_BOUNDS_US[i] as f64
    };
    (lower, upper)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The histogram quantile lands inside the bucket that holds the
    /// sorted-vec oracle's value — the estimator's documented error
    /// bound — for arbitrary value sets and quantiles.
    #[test]
    fn quantile_lands_in_the_oracle_bucket(
        values in prop::collection::vec(0u64..100_000_000, 1..300),
        q in 0.0f64..1.0,
    ) {
        let mut h = HistogramSnapshot::new();
        for &v in &values {
            h.observe(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        // The implementation targets rank max(q·n, 1); the oracle is the
        // value at that rank (1-based, ceiling).
        let target = (q * sorted.len() as f64).max(1.0);
        let rank = (target.ceil() as usize).clamp(1, sorted.len());
        let oracle = sorted[rank - 1];
        let est = h.quantile(q);
        let (lower, upper) = bucket_bounds(oracle);
        // Overflow reports the last finite boundary, otherwise the
        // estimate interpolates within the oracle's bucket.
        let est_ok = if upper.is_infinite() {
            (est - BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1] as f64).abs() < 1e-9
        } else {
            est >= lower && est <= upper
        };
        prop_assert!(
            est_ok,
            "q={q}: estimate {est} vs oracle {oracle} in [{lower}, {upper}]"
        );
    }

    /// Merging two snapshots is exactly equivalent to observing the
    /// concatenated value stream, and the +Inf invariant (bucket counts
    /// sum to `count`) holds throughout.
    #[test]
    fn merge_equals_concatenated_observation(
        a in prop::collection::vec(0u64..100_000_000, 0..150),
        b in prop::collection::vec(0u64..100_000_000, 0..150),
    ) {
        let mut ha = HistogramSnapshot::new();
        for &v in &a {
            ha.observe(v);
        }
        let mut hb = HistogramSnapshot::new();
        for &v in &b {
            hb.observe(v);
        }
        let mut merged = ha.clone();
        merged.merge(&hb);
        let mut oracle = HistogramSnapshot::new();
        for &v in a.iter().chain(&b) {
            oracle.observe(v);
        }
        prop_assert_eq!(&merged, &oracle);
        prop_assert_eq!(merged.buckets.iter().sum::<u64>(), merged.count);
        prop_assert_eq!(
            merged.sum_us,
            a.iter().chain(&b).sum::<u64>()
        );
    }
}
