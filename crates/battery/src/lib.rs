//! # batsched-battery
//!
//! Analytical battery models and discharge-profile machinery for
//! battery-aware task scheduling — the substrate of the DATE'05 paper
//! *"An Iterative Algorithm for Battery-Aware Task Scheduling on Portable
//! Computing Platforms"* (Khan & Vemuri).
//!
//! The centrepiece is the [Rakhmatov–Vrudhula diffusion model](rv::RvModel)
//! (the paper's equation 1), which the scheduler uses as its cost function.
//! Three further models — an [ideal coulomb counter](ideal::CoulombCounter),
//! [Peukert's law](peukert::PeukertModel) and the
//! [kinetic battery model](kibam::KibamModel) — support the related-work
//! baselines and model-sensitivity ablations.
//!
//! ```
//! use batsched_battery::prelude::*;
//!
//! // A 500 mA burst followed by a light 20 mA tail...
//! let profile = LoadProfile::from_steps([
//!     (Minutes::new(5.0), MilliAmps::new(500.0)),
//!     (Minutes::new(20.0), MilliAmps::new(20.0)),
//! ])?;
//! let rv = RvModel::date05();
//! let sigma = rv.apparent_charge(&profile, profile.end());
//! // ...always costs more than the charge actually delivered:
//! assert!(sigma.value() > profile.direct_charge().value());
//! # Ok::<(), batsched_battery::profile::ProfileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod eval;
pub mod ideal;
pub mod kibam;
pub mod model;
pub mod peukert;
pub mod profile;
pub mod rv;
pub mod units;

pub use eval::{SigmaEvaluator, SigmaScratch};
pub use ideal::CoulombCounter;
pub use kibam::{KibamModel, KibamStepper};
pub use model::BatteryModel;
pub use peukert::PeukertModel;
pub use profile::{Interval, LoadProfile, ProfileError};
pub use rv::RvModel;
pub use units::{Energy, MilliAmpMinutes, MilliAmps, Minutes, Volts};

/// Convenient glob-import of the types almost every user needs.
pub mod prelude {
    pub use crate::eval::{SigmaEvaluator, SigmaScratch};
    pub use crate::model::BatteryModel;
    pub use crate::profile::{Interval, LoadProfile};
    pub use crate::rv::RvModel;
    pub use crate::units::{Energy, MilliAmpMinutes, MilliAmps, Minutes, Volts};
}

#[cfg(test)]
mod trait_object_tests {
    use super::*;

    #[test]
    fn models_are_object_safe_and_comparable() {
        let models: Vec<Box<dyn BatteryModel>> = vec![
            Box::new(CoulombCounter::new()),
            Box::new(RvModel::date05()),
            Box::new(PeukertModel::lithium_ion(MilliAmps::new(100.0))),
            Box::new(KibamModel::new(0.5, 0.05, MilliAmpMinutes::new(10_000.0)).unwrap()),
        ];
        let p = LoadProfile::from_steps([(Minutes::new(10.0), MilliAmps::new(200.0))]).unwrap();
        for m in &models {
            let q = m.apparent_charge(&p, p.end());
            assert!(
                q.is_finite() && q.is_non_negative(),
                "{} misbehaved",
                m.name()
            );
        }
        // The ideal battery is the cheapest view of any profile.
        let ideal = models[0].apparent_charge(&p, p.end()).value();
        let rv = models[1].apparent_charge(&p, p.end()).value();
        assert!(rv >= ideal);
    }

    #[test]
    fn reference_and_box_forwarding() {
        let m = RvModel::date05();
        let p = LoadProfile::from_steps([(Minutes::new(5.0), MilliAmps::new(50.0))]).unwrap();
        let by_ref: &dyn BatteryModel = &m;
        let boxed: Box<dyn BatteryModel> = Box::new(m.clone());
        assert_eq!(
            by_ref.apparent_charge(&p, p.end()),
            boxed.apparent_charge(&p, p.end())
        );
        assert_eq!(m.name(), "rakhmatov-vrudhula");
    }
}
