//! Battery analysis utilities: the quantitative face of the §3 effects.
//!
//! These helpers answer the capacity-planning questions a schedule designer
//! actually asks — *how much usable capacity do I have at this discharge
//! rate?*, *how much does a rest period buy back?* — and back the
//! `battery_recovery` example and the extension experiments.

use crate::model::{peak_apparent_charge, BatteryModel};
use crate::profile::{LoadProfile, ProfileError};
use crate::units::{MilliAmpMinutes, MilliAmps, Minutes};
use serde::{Deserialize, Serialize};

/// One row of a rate-capacity table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatePoint {
    /// Constant discharge current.
    pub current: MilliAmps,
    /// Time until the battery dies at this current.
    pub lifetime: Minutes,
    /// Charge actually delivered by then (`I·lifetime`).
    pub delivered: MilliAmpMinutes,
    /// Delivered charge as a fraction of rated capacity.
    pub utilisation: f64,
}

/// Sweeps constant-current discharges and reports the effective (usable)
/// capacity at each rate — the classic rate-capacity curve. Currents that
/// do not kill the battery within `horizon` are skipped.
pub fn rate_capacity_curve<M: BatteryModel + ?Sized>(
    model: &M,
    capacity: MilliAmpMinutes,
    currents: &[MilliAmps],
    horizon: Minutes,
) -> Vec<RatePoint> {
    currents
        .iter()
        .filter_map(|&i| {
            if !(i.is_finite() && i.value() > 0.0) {
                return None;
            }
            let profile =
                LoadProfile::from_steps([(horizon, i)]).expect("positive duration and current");
            let lifetime = model.lifetime(&profile, capacity)?;
            let delivered = i * lifetime;
            Some(RatePoint {
                current: i,
                lifetime,
                delivered,
                utilisation: delivered.value() / capacity.value(),
            })
        })
        .collect()
}

/// Charge recovered by inserting a rest of `rest` minutes after `burst`:
/// the drop in apparent charge between measuring at the burst's end and
/// measuring after the rest. Non-negative for any sane model.
///
/// # Errors
///
/// Propagates [`ProfileError`] for invalid burst parameters.
pub fn recovery_gain<M: BatteryModel + ?Sized>(
    model: &M,
    burst_current: MilliAmps,
    burst_duration: Minutes,
    rest: Minutes,
) -> Result<MilliAmpMinutes, ProfileError> {
    let mut p = LoadProfile::new();
    p.push(burst_duration, burst_current)?;
    let at_end = model.apparent_charge(&p, burst_duration);
    let rested = model.apparent_charge(&p, burst_duration + rest);
    Ok(at_end - rested)
}

/// The minimum rated capacity that survives `profile` under `model` — the
/// peak apparent charge, plus a caller-chosen safety margin fraction.
pub fn required_capacity<M: BatteryModel + ?Sized>(
    model: &M,
    profile: &LoadProfile,
    margin: f64,
) -> MilliAmpMinutes {
    let (_, peak) = peak_apparent_charge(model, profile, 64);
    peak * (1.0 + margin.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ideal::CoulombCounter;
    use crate::rv::RvModel;

    #[test]
    fn rate_capacity_curve_shows_falling_utilisation() {
        let m = RvModel::date05();
        let cap = MilliAmpMinutes::new(20_000.0);
        let currents: Vec<MilliAmps> = [50.0, 100.0, 200.0, 400.0, 800.0]
            .map(MilliAmps::new)
            .to_vec();
        let curve = rate_capacity_curve(&m, cap, &currents, Minutes::new(100_000.0));
        assert_eq!(curve.len(), 5);
        for w in curve.windows(2) {
            assert!(
                w[1].lifetime.value() < w[0].lifetime.value(),
                "heavier dies sooner"
            );
            assert!(
                w[1].utilisation <= w[0].utilisation + 1e-9,
                "utilisation falls with rate: {} then {}",
                w[0].utilisation,
                w[1].utilisation
            );
        }
        for p in &curve {
            assert!(p.utilisation > 0.0 && p.utilisation <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn ideal_battery_has_flat_utilisation() {
        let m = CoulombCounter::new();
        let cap = MilliAmpMinutes::new(1_000.0);
        let curve = rate_capacity_curve(
            &m,
            cap,
            &[MilliAmps::new(10.0), MilliAmps::new(100.0)],
            Minutes::new(1_000.0),
        );
        for p in &curve {
            assert!((p.utilisation - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn surviving_currents_are_skipped() {
        let m = RvModel::date05();
        let curve = rate_capacity_curve(
            &m,
            MilliAmpMinutes::new(1e9),
            &[MilliAmps::new(10.0)],
            Minutes::new(100.0),
        );
        assert!(curve.is_empty());
    }

    #[test]
    fn recovery_gain_grows_with_rest_then_saturates() {
        let m = RvModel::date05();
        let gain = |rest: f64| {
            recovery_gain(
                &m,
                MilliAmps::new(500.0),
                Minutes::new(5.0),
                Minutes::new(rest),
            )
            .unwrap()
            .value()
        };
        let g5 = gain(5.0);
        let g20 = gain(20.0);
        let g200 = gain(200.0);
        assert!(g5 > 0.0);
        assert!(g20 > g5);
        assert!(g200 >= g20);
        // Saturation: the total unavailable charge is the ceiling.
        let mut p = LoadProfile::new();
        p.push(Minutes::new(5.0), MilliAmps::new(500.0)).unwrap();
        let ceiling = m.apparent_charge(&p, Minutes::new(5.0)).value() - p.direct_charge().value();
        assert!(g200 <= ceiling + 1e-6);
        assert!(
            (g200 - ceiling).abs() / ceiling < 0.01,
            "200 min is essentially saturated"
        );
    }

    #[test]
    fn recovery_gain_is_zero_for_ideal_batteries() {
        let m = CoulombCounter::new();
        let g = recovery_gain(
            &m,
            MilliAmps::new(500.0),
            Minutes::new(5.0),
            Minutes::new(60.0),
        )
        .unwrap();
        assert_eq!(g.value(), 0.0);
    }

    #[test]
    fn required_capacity_survives_by_construction() {
        let m = RvModel::date05();
        let p = LoadProfile::from_steps([
            (Minutes::new(5.0), MilliAmps::new(700.0)),
            (Minutes::new(30.0), MilliAmps::new(30.0)),
        ])
        .unwrap();
        let cap = required_capacity(&m, &p, 0.01);
        assert_eq!(m.lifetime(&p, cap), None, "margin capacity must survive");
        let tight = required_capacity(&m, &p, 0.0) * 0.98;
        assert!(m.lifetime(&p, tight).is_some(), "2% under peak must die");
    }
}
