//! Property-based tests for the baseline schedulers, including the two
//! optimality anchors: the DP baseline is charge-optimal, and nothing
//! beats the exhaustive optimum on battery cost.

use batsched_baselines::{
    ChowdhuryScaling, Exhaustive, KhanVemuri, RakhmatovDp, RandomSearch, Scheduler,
    SimulatedAnnealing,
};
use batsched_battery::rv::RvModel;
use batsched_battery::units::Minutes;
use batsched_taskgraph::analysis::{max_makespan, min_makespan};
use batsched_taskgraph::synth::{fork_join, random_dag, Rounding, ScalingScheme, TaskParams};
use batsched_taskgraph::TaskGraph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn params(m: usize) -> TaskParams {
    TaskParams {
        current_range: (50.0, 900.0),
        duration_range: (1.0, 10.0),
        factors: (0..m)
            .map(|j| 1.0 - 0.6 * j as f64 / (m - 1) as f64)
            .collect(),
        scheme: ScalingScheme::ReversedDuration,
        rounding: Rounding::PAPER,
    }
}

fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (2usize..5, any::<u64>(), 2usize..6, any::<bool>()).prop_map(|(m, seed, n, fj)| {
        let mut rng = StdRng::seed_from_u64(seed);
        if fj {
            fork_join(&[n], &params(m), &mut rng).unwrap()
        } else {
            random_dag(n + 2, 0.35, &params(m), &mut rng).unwrap()
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every baseline produces valid, deadline-meeting schedules on every
    /// feasible instance.
    #[test]
    fn all_baselines_produce_valid_schedules(g in arb_graph(), slack in 0.1f64..0.9) {
        let lo = min_makespan(&g).value();
        let hi = max_makespan(&g).value();
        let d = Minutes::new(lo + (hi - lo) * slack);
        let algos: Vec<Box<dyn Scheduler>> = vec![
            Box::new(KhanVemuri::paper()),
            Box::new(RakhmatovDp::default()),
            Box::new(ChowdhuryScaling),
            Box::new(SimulatedAnnealing { steps: 1_000, ..Default::default() }),
            Box::new(RandomSearch { samples: 30, ..Default::default() }),
        ];
        for a in &algos {
            let s = a.schedule(&g, d).unwrap_or_else(|e| panic!("{} failed: {e}", a.name()));
            prop_assert!(s.validate(&g, Some(d)).is_ok(), "{} invalid", a.name());
        }
    }

    /// The DP selection is optimal for *delivered charge*: no other valid
    /// schedule of the same instance delivers less.
    #[test]
    fn dp_is_charge_optimal(g in arb_graph(), slack in 0.1f64..0.9) {
        let lo = min_makespan(&g).value();
        let hi = max_makespan(&g).value();
        let d = Minutes::new(lo + (hi - lo) * slack);
        let dp = RakhmatovDp::default().schedule(&g, d).unwrap();
        let dp_charge = dp.direct_charge(&g).value();
        let others: Vec<Box<dyn Scheduler>> = vec![
            Box::new(KhanVemuri::paper()),
            Box::new(ChowdhuryScaling),
            Box::new(RandomSearch { samples: 30, ..Default::default() }),
        ];
        for a in &others {
            let s = a.schedule(&g, d).unwrap();
            prop_assert!(
                s.direct_charge(&g).value() >= dp_charge - 1e-6,
                "{} delivered less charge than the charge-optimal DP",
                a.name()
            );
        }
    }

    /// Nothing beats the exhaustive optimum on battery cost (small
    /// instances only, to keep the enumeration tractable).
    #[test]
    fn nothing_beats_the_exhaustive_optimum(seed in any::<u64>(), slack in 0.2f64..0.9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = fork_join(&[2], &params(3), &mut rng).unwrap(); // 4 tasks, 3 points
        let lo = min_makespan(&g).value();
        let hi = max_makespan(&g).value();
        let d = Minutes::new(lo + (hi - lo) * slack);
        let (_, opt) = Exhaustive::default().best(&g, d).unwrap();
        let model = RvModel::date05();
        let algos: Vec<Box<dyn Scheduler>> = vec![
            Box::new(KhanVemuri::paper()),
            Box::new(RakhmatovDp::default()),
            Box::new(ChowdhuryScaling),
            Box::new(SimulatedAnnealing { steps: 2_000, ..Default::default() }),
        ];
        for a in &algos {
            let s = a.schedule(&g, d).unwrap();
            let c = s.battery_cost(&g, &model).value();
            prop_assert!(c >= opt - 1e-6, "{} beat the optimum: {c} < {opt}", a.name());
        }
    }

    /// The exhaustive baseline's prefix-keyed σ path returns the same
    /// optimum as the retained per-leaf suffix-engine path. The two paths
    /// enumerate and prune identically but accumulate σ in different
    /// floating-point association, so when two leaves tie within that
    /// ~1e-9 noise the strict-`<` argmin may legitimately pick either;
    /// the sound property is: equal optimum *costs* (to association
    /// tolerance, re-scored through one common evaluator), both schedules
    /// valid — and bit-identical schedules whenever the runner-up is
    /// separated by more than float noise (the generic case).
    #[test]
    fn exhaustive_prefix_cache_matches_reference(g in arb_graph(), slack in 0.05f64..0.95) {
        let lo = min_makespan(&g).value();
        let hi = max_makespan(&g).value();
        let d = Minutes::new(lo + (hi - lo) * slack);
        let fast = Exhaustive::default();
        let slow = Exhaustive { use_prefix_cache: false, ..Default::default() };
        let (sf, cf) = fast.best(&g, d).unwrap();
        let (ss, cs) = slow.best(&g, d).unwrap();
        prop_assert!((cf - cs).abs() <= 1e-9 * cs.max(1.0), "{} vs {}", cf, cs);
        prop_assert!(sf.validate(&g, Some(d)).is_ok());
        prop_assert!(ss.validate(&g, Some(d)).is_ok());
        if sf != ss {
            // Only acceptable on a float-noise tie: both schedules must
            // score identically under one common (naive) evaluator.
            let model = RvModel::date05();
            let a = sf.battery_cost(&g, &model).value();
            let b = ss.battery_cost(&g, &model).value();
            prop_assert!(
                (a - b).abs() <= 1e-9 * b.max(1.0),
                "paths picked different non-tied optima: {} vs {}", a, b
            );
        }
    }

    /// At a loose deadline, the informed heuristic must solidly beat the
    /// naive always-feasible schedule (every task at its fastest, hungriest
    /// point). Random search can get lucky on tiny instances, so the naive
    /// anchor is the robust one.
    #[test]
    fn ours_beats_the_all_fastest_schedule_at_loose_deadlines(g in arb_graph()) {
        let d = Minutes::new(max_makespan(&g).value() * 0.9);
        if d.value() < min_makespan(&g).value() { return Ok(()); }
        let model = RvModel::date05();
        let ours = KhanVemuri::paper().schedule(&g, d).unwrap();
        let naive = batsched_core::Schedule::new(
            batsched_taskgraph::topo::topological_order(&g),
            vec![batsched_taskgraph::PointId(0); g.task_count()],
        );
        let a = ours.battery_cost(&g, &model).value();
        let b = naive.battery_cost(&g, &model).value();
        prop_assert!(a < b, "ours {a} vs all-fastest {b}");
    }
}
