//! Cross-crate integration: every scheduler against every workload family,
//! executed end-to-end through the simulator.

use batsched::baselines::{
    ChowdhuryScaling, KhanVemuri, RakhmatovDp, RandomSearch, Scheduler, SimulatedAnnealing,
};
use batsched::battery::rv::RvModel;
use batsched::prelude::*;
use batsched::sim::Simulator;
use batsched::taskgraph::analysis::{max_makespan, min_makespan};
use batsched::taskgraph::synth::{
    chain, fork_join, layered, random_dag, series_parallel, TaskParams,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn all_algorithms() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(KhanVemuri::paper()),
        Box::new(RakhmatovDp::default()),
        Box::new(ChowdhuryScaling),
        Box::new(SimulatedAnnealing {
            steps: 2_000,
            ..Default::default()
        }),
        Box::new(RandomSearch {
            samples: 50,
            ..Default::default()
        }),
    ]
}

fn all_families() -> Vec<(&'static str, TaskGraph)> {
    let p = TaskParams::default();
    let mut rng = StdRng::seed_from_u64(0xFEED);
    vec![
        ("g2", batsched::taskgraph::paper::g2()),
        ("g3", batsched::taskgraph::paper::g3()),
        ("chain", chain(8, &p, &mut rng).unwrap()),
        ("fork_join", fork_join(&[3, 2], &p, &mut rng).unwrap()),
        ("layered", layered(4, 3, 0.4, &p, &mut rng).unwrap()),
        ("series_parallel", series_parallel(3, &p, &mut rng).unwrap()),
        ("random", random_dag(10, 0.3, &p, &mut rng).unwrap()),
    ]
}

/// Every algorithm on every family at two slack levels: valid schedules,
/// deadlines met, costs finite and above the delivered charge.
#[test]
fn every_algorithm_schedules_every_family() {
    let model = RvModel::date05();
    for (name, g) in all_families() {
        let lo = min_makespan(&g).value();
        let hi = max_makespan(&g).value();
        for slack in [0.35, 0.85] {
            let d = Minutes::new(lo + (hi - lo) * slack);
            for algo in all_algorithms() {
                let s = algo
                    .schedule(&g, d)
                    .unwrap_or_else(|e| panic!("{} on {name} (slack {slack}): {e}", algo.name()));
                s.validate(&g, Some(d))
                    .unwrap_or_else(|e| panic!("{} on {name}: {e}", algo.name()));
                let cost = s.battery_cost(&g, &model).value();
                assert!(cost.is_finite() && cost > 0.0);
                assert!(cost >= s.direct_charge(&g).value() - 1e-6);
            }
        }
    }
}

/// On the paper's own graphs, our algorithm beats or ties the DP baseline
/// at every published deadline — Table 4's headline, as an invariant.
#[test]
fn ours_beats_dp_on_paper_graphs() {
    let model = RvModel::date05();
    let ours = KhanVemuri::paper();
    let dp = RakhmatovDp::default();
    for (g, deadlines) in [
        (
            batsched::taskgraph::paper::g2(),
            &batsched::taskgraph::paper::G2_TABLE4_DEADLINES,
        ),
        (
            batsched::taskgraph::paper::g3(),
            &batsched::taskgraph::paper::G3_TABLE4_DEADLINES,
        ),
    ] {
        for &d in deadlines {
            let dl = Minutes::new(d);
            let a = ours
                .schedule(&g, dl)
                .unwrap()
                .battery_cost(&g, &model)
                .value();
            let b = dp
                .schedule(&g, dl)
                .unwrap()
                .battery_cost(&g, &model)
                .value();
            assert!(a <= b, "d={d}: ours {a} vs dp {b}");
        }
    }
}

/// Planner → simulator end-to-end. The battery dies at the FIRST crossing
/// of its capacity, and σ crests mid-mission after heavy tasks (recovery
/// effect), so the survival threshold is the *peak* apparent charge, not
/// the final σ: a battery just above the peak survives, one just below the
/// peak dies.
#[test]
fn simulator_agrees_with_planner_peak_sigma() {
    let model = RvModel::date05();
    for (name, g) in all_families() {
        let d = Minutes::new(max_makespan(&g).value() * 0.8);
        if d.value() < min_makespan(&g).value() {
            continue;
        }
        let plan = batsched::schedule(&g, d, &SchedulerConfig::paper()).unwrap();
        let profile = plan.schedule.to_profile(&g);
        let (_, peak) = batsched::battery::model::peak_apparent_charge(&model, &profile, 64);

        let roomy = Simulator::paper(peak * 1.01, Some(d));
        let r = roomy.run(&g, &plan.schedule, &model);
        assert!(r.success, "{name}: must survive on 101% of peak σ: {r}");

        let starved = Simulator::paper(peak * 0.95, Some(d));
        let r = starved.run(&g, &plan.schedule, &model);
        assert!(!r.success, "{name}: must die on 95% of peak σ");
        assert!(r.depleted_at.is_some());

        // The final σ never exceeds the peak.
        assert!(plan.cost.value() <= peak.value() + 1e-9);
    }
}

/// JSON round trip through the public io module preserves scheduling
/// results bit-for-bit (graphs, schedules, solutions).
#[test]
fn serialisation_round_trips_preserve_results() {
    let g = batsched::taskgraph::paper::g2();
    let json = batsched::taskgraph::io::to_json(&g);
    let g2 = batsched::taskgraph::io::from_json(&json).unwrap();
    assert_eq!(g, g2);

    let d = Minutes::new(75.0);
    let a = batsched::schedule(&g, d, &SchedulerConfig::paper()).unwrap();
    let b = batsched::schedule(&g2, d, &SchedulerConfig::paper()).unwrap();
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.cost, b.cost);

    let sol_json = serde_json::to_string(&a).unwrap();
    let back: batsched::Solution = serde_json::from_str(&sol_json).unwrap();
    assert_eq!(back, a);
}

/// Determinism: the full pipeline is bit-reproducible run to run.
#[test]
fn pipeline_is_deterministic() {
    let g = batsched::taskgraph::paper::g3();
    let d = Minutes::new(230.0);
    let a = batsched::schedule(&g, d, &SchedulerConfig::paper()).unwrap();
    let b = batsched::schedule(&g, d, &SchedulerConfig::paper()).unwrap();
    assert_eq!(a, b);
}
