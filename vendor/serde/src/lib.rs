//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal serialization framework under the same crate name. It supports
//! exactly what the workspace uses: `#[derive(Serialize, Deserialize)]` on
//! structs and enums (including `#[serde(transparent)]` and
//! `#[serde(try_from = "...", into = "...")]` container attributes) and a
//! JSON backend exposed through the sibling `serde_json` shim.
//!
//! The wire format is self-consistent (everything this crate writes, it can
//! read back) and matches real `serde_json` conventions for the shapes the
//! workspace serializes: transparent newtypes as bare values, structs as
//! objects, unit enum variants as strings, data variants as
//! single-key objects, tuples as arrays.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

use json::{Error, Value};

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Converts `self` into a JSON value tree.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `Self` out of a JSON value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Num(x) => Ok(*x),
            _ => Err(Error::custom("expected number")),
        }
    }
}

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(x) if x.fract() == 0.0 => {
                        let candidate = *x as $t;
                        if candidate as f64 == *x {
                            Ok(candidate)
                        } else {
                            Err(Error::custom("integer out of range"))
                        }
                    }
                    _ => Err(Error::custom("expected integer")),
                }
            }
        }
    )*};
}

int_impl!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! tuple_impl {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = match v {
                    Value::Arr(items) => items,
                    _ => return Err(Error::custom("expected tuple array")),
                };
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom("tuple arity mismatch"));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

tuple_impl! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
